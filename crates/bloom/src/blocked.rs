//! The blocked Bloom filter family: blocked, register-blocked, sectorized and
//! cache-sectorized variants behind a single runtime-configured implementation.
//!
//! The scalar lookup paths are direct transcriptions of Listing 1 (word-
//! addressed blocked lookup) and Listing 2 (register-blocked lookup with a
//! single comparison), generalised to sectors and sector groups as described
//! in §3.2. The batched lookup path dispatches to AVX2 kernels (the
//! crate-private `simd` module) when the CPU supports them and the configuration is
//! SIMD-friendly; the scalar and SIMD paths are bit-for-bit equivalent, which
//! the property tests assert.

use crate::config::{Addressing, BloomConfig, BloomVariant};
use crate::counting::CountingSidecar;
use crate::simd;
use crate::staged;
use pof_filter::probe::{self, ProbePlan};
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_hash::Modulus;

/// Multiplier for the block-addressing hash (Knuth's constant).
pub(crate) const BLOCK_HASH_C: u32 = 0x9E37_79B1;
/// Seed multiplier for the bit-addressing stream (independent of the block hash).
pub(crate) const STREAM_SEED_C: u32 = 0x85EB_CA6B;
/// Per-step remix multiplier of the bit-addressing stream (MurmurHash3 c1).
pub(crate) const STREAM_STEP_C: u32 = 0xCC9E_2D51;

/// Maximum number of (sector, mask) probes a single lookup can produce:
/// the plain blocked variant performs `k ≤ 24` accesses.
const MAX_PROBES: usize = 24;

/// Advance the bit-addressing stream and return its top `nbits` bits.
///
/// Both the scalar and the SIMD kernels use exactly this sequence, so the two
/// paths agree on every probed position.
#[inline(always)]
pub(crate) fn next_bits(state: &mut u32, nbits: u32) -> u32 {
    debug_assert!(nbits <= 32);
    if nbits == 0 {
        return 0;
    }
    *state = state.wrapping_mul(STREAM_STEP_C);
    *state >> (32 - nbits)
}

/// A blocked Bloom filter (any of the four variants of Figure 12a).
#[derive(Debug, Clone)]
pub struct BlockedBloom {
    config: BloomConfig,
    modulus: Modulus,
    data: Vec<u64>,
    keys_inserted: u64,
    simd_kernel: simd::Kernel,
    /// Whether the staged (hash → prefetch → probe) kernel may serve large
    /// batches; cleared by [`Self::force_scalar`].
    staged_enabled: bool,
    /// Optional counting sidecar ([`Self::enable_counting`]): one saturating
    /// counter per bit, making [`Filter::try_delete`] clear bits in place.
    /// Boxed so the common (non-counting) filter pays one pointer.
    counting: Option<Box<CountingSidecar>>,
}

impl BlockedBloom {
    /// Create a filter of (at least) `m_bits` bits with the given
    /// configuration. The actual size is the requested size rounded up to the
    /// addressing granularity: the next power of two of blocks for
    /// [`Addressing::PowerOfTwo`], or the next "add-free magic" block count
    /// for [`Addressing::Magic`] (§5.2).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`BloomConfig::validate`])
    /// or `m_bits` is zero.
    #[must_use]
    pub fn new(config: BloomConfig, m_bits: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid Bloom configuration: {e}"));
        assert!(m_bits > 0, "filter size must be positive");
        let modulus = config.addressing_for_bits(m_bits);
        let total_bits = u64::from(modulus.size()) * u64::from(config.block_bits);
        let words = usize::try_from(total_bits.div_ceil(64)).expect("filter too large");
        let simd_kernel = simd::Kernel::select(&config);
        Self {
            config,
            modulus,
            data: vec![0u64; words],
            keys_inserted: 0,
            simd_kernel,
            staged_enabled: true,
            counting: None,
        }
    }

    /// Create a filter sized for `n` keys at a bits-per-key budget.
    #[must_use]
    pub fn with_bits_per_key(config: BloomConfig, n: usize, bits_per_key: f64) -> Self {
        let m_bits = ((n as f64) * bits_per_key)
            .ceil()
            .max(f64::from(config.block_bits)) as u64;
        Self::new(config, m_bits)
    }

    /// The filter's configuration.
    #[must_use]
    pub fn config(&self) -> &BloomConfig {
        &self.config
    }

    /// Number of blocks in the filter.
    #[must_use]
    pub fn num_blocks(&self) -> u32 {
        self.modulus.size()
    }

    /// Number of keys inserted so far.
    #[must_use]
    pub fn keys_inserted(&self) -> u64 {
        self.keys_inserted
    }

    /// The analytical false-positive rate of this filter instance given the
    /// number of keys actually inserted.
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        self.config
            .modeled_fpr(self.size_bits() as f64, self.keys_inserted as f64)
    }

    /// Which batch-lookup kernel (scalar or SIMD) this instance uses.
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        self.simd_kernel.name()
    }

    /// Force the scalar batch-lookup path (used by the SIMD-speedup benches
    /// and the equivalence tests). Also disables the automatic staged-kernel
    /// routing, so `contains_batch` really runs the scalar loop; the explicit
    /// [`Self::contains_batch_staged`] entry point stays available.
    pub fn force_scalar(&mut self) {
        self.simd_kernel = simd::Kernel::Scalar;
        self.staged_enabled = false;
    }

    /// Attach a [`CountingSidecar`] (one 4-bit saturating counter per filter
    /// bit, promoting to 8-bit on saturation), turning this filter into a
    /// counting Bloom filter: [`Filter::try_delete`] then clears bits in
    /// place instead of refusing. Costs 4 bits of sidecar memory per filter
    /// bit (8 after promotion) on the *write side only* — lookups never
    /// touch the counters, and [`Self::read_only_clone`] drops them.
    ///
    /// # Panics
    /// Panics if any key was already inserted: counters must witness every
    /// insert, or deletes would under-count shared bits and corrupt other
    /// members.
    pub fn enable_counting(&mut self) {
        assert_eq!(
            self.keys_inserted, 0,
            "counting must be enabled before the first insert"
        );
        self.counting = Some(Box::new(CountingSidecar::new(self.size_bits())));
    }

    /// Is a counting sidecar attached (i.e. does this filter delete)?
    #[must_use]
    pub fn counting_enabled(&self) -> bool {
        self.counting.is_some()
    }

    /// Heap bytes held by the counting sidecar (0 without one).
    #[must_use]
    pub fn counting_bytes(&self) -> usize {
        self.counting.as_ref().map_or(0, |c| c.bytes())
    }

    /// Clone the read side only: the bit array, configuration and kernel,
    /// *without* the counting sidecar. Lookups never consult the counters,
    /// so the clone answers every probe identically at a fraction of the
    /// copy cost — the right shape for published snapshots. The clone
    /// reports [`Filter::supports_delete`] `== false`.
    #[must_use]
    pub fn read_only_clone(&self) -> Self {
        Self {
            config: self.config,
            modulus: self.modulus,
            data: self.data.clone(),
            keys_inserted: self.keys_inserted,
            simd_kernel: self.simd_kernel,
            staged_enabled: self.staged_enabled,
            counting: None,
        }
    }

    /// Borrow the raw bit-array words for snapshot serialization: the words
    /// are the filter's entire probe-side state, stored little-endian on
    /// disk so a persisted snapshot is byte-identical to the live array.
    #[must_use]
    pub fn snapshot_words(&self) -> &[u64] {
        &self.data
    }

    /// Borrow the counting sidecar, if one is attached — snapshot
    /// serialization persists it alongside the bit array so counting shards
    /// keep deleting after recovery.
    #[must_use]
    pub fn counting_sidecar(&self) -> Option<&CountingSidecar> {
        self.counting.as_deref()
    }

    /// Rebuild a filter from persisted raw parts. `m_bits` must be the
    /// granular size a previous instance reported via `Filter::size_bits`
    /// (the addressing round-up is idempotent, so re-deriving the layout
    /// from it reproduces the original block count); `words` is the bit
    /// array from [`Self::snapshot_words`]. Fails when the word count or
    /// sidecar width does not match the derived layout — the snapshot was
    /// written by a different configuration.
    pub fn restore(
        config: BloomConfig,
        m_bits: u64,
        keys_inserted: u64,
        words: Vec<u64>,
        counting: Option<CountingSidecar>,
    ) -> Result<Self, &'static str> {
        let mut filter = Self::new(config, m_bits);
        if filter.size_bits() != m_bits {
            return Err("snapshot size is not a valid addressing layout");
        }
        if filter.data.len() != words.len() {
            return Err("bit-array word count does not match the addressing layout");
        }
        if let Some(sidecar) = &counting {
            if sidecar.len() != m_bits {
                return Err("counting sidecar width does not match the filter");
            }
        }
        filter.data = words;
        filter.keys_inserted = keys_inserted;
        filter.counting = counting.map(Box::new);
        Ok(filter)
    }

    /// Raw block storage, exposed to the SIMD kernels.
    #[inline(always)]
    pub(crate) fn words(&self) -> &[u64] {
        &self.data
    }

    /// Block-index modulus, exposed to the SIMD kernels.
    #[inline(always)]
    pub(crate) fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Compute the block index of a key.
    #[inline(always)]
    pub(crate) fn block_index(&self, key: u32) -> u32 {
        self.modulus.reduce(key.wrapping_mul(BLOCK_HASH_C))
    }

    /// Enumerate the (sector-start-bit, mask) probes of a key into `out`,
    /// returning how many were produced. Insert ORs the masks in, lookup
    /// requires every mask to be fully present.
    #[inline]
    fn probes(&self, key: u32, out: &mut [(u64, u64); MAX_PROBES]) -> usize {
        let block_start = u64::from(self.block_index(key)) * u64::from(self.config.block_bits);
        self.probes_at(key, block_start, out)
    }

    /// [`Self::probes`] with the key's block start already computed — the
    /// staged kernel hashes block addresses a chunk ahead of probing them,
    /// so the probe stage must not re-derive (or worse, re-disagree on) the
    /// block. The bit-addressing stream is seeded from the key alone and is
    /// unchanged.
    #[inline]
    fn probes_at(&self, key: u32, block_start: u64, out: &mut [(u64, u64); MAX_PROBES]) -> usize {
        let cfg = &self.config;
        let mut state = key.wrapping_mul(STREAM_SEED_C);
        match cfg.variant() {
            BloomVariant::RegisterBlocked => {
                // Listing 2: one word, k bits ORed into one search mask.
                let bits = cfg.block_bits;
                let mut mask = 0u64;
                for _ in 0..cfg.k {
                    let bit = next_bits(&mut state, bits.trailing_zeros());
                    mask |= 1u64 << bit;
                }
                out[0] = (block_start, mask);
                1
            }
            BloomVariant::Blocked => {
                // Listing 1: per bit, pick a 32-bit word within the block and
                // a bit within that word (random access pattern).
                let words_per_block = cfg.block_bits / 32;
                for slot in out.iter_mut().take(cfg.k as usize) {
                    let word = next_bits(&mut state, words_per_block.trailing_zeros());
                    let bit = next_bits(&mut state, 5);
                    *slot = (block_start + u64::from(word) * 32, 1u64 << bit);
                }
                cfg.k as usize
            }
            BloomVariant::Sectorized => {
                // §3.2: k/s bits in each of the s sectors, sequential access.
                let sectors = cfg.sectors();
                let per_sector = cfg.k / sectors;
                let sector_bits = cfg.sector_bits;
                for (sector, slot) in out.iter_mut().enumerate().take(sectors as usize) {
                    let mut mask = 0u64;
                    for _ in 0..per_sector {
                        let bit = next_bits(&mut state, sector_bits.trailing_zeros());
                        mask |= 1u64 << bit;
                    }
                    *slot = (block_start + sector as u64 * u64::from(sector_bits), mask);
                }
                sectors as usize
            }
            BloomVariant::CacheSectorized => {
                // §3.2 / Figure 6: z groups; in each group one hash-chosen
                // sector receives k/z bits.
                let sectors = cfg.sectors();
                let groups = cfg.groups;
                let sectors_per_group = sectors / groups;
                let per_group = cfg.k / groups;
                let sector_bits = cfg.sector_bits;
                for (group, slot) in out.iter_mut().enumerate().take(groups as usize) {
                    let sector_in_group = next_bits(&mut state, sectors_per_group.trailing_zeros());
                    let sector =
                        group as u64 * u64::from(sectors_per_group) + u64::from(sector_in_group);
                    let mut mask = 0u64;
                    for _ in 0..per_group {
                        let bit = next_bits(&mut state, sector_bits.trailing_zeros());
                        mask |= 1u64 << bit;
                    }
                    *slot = (block_start + sector * u64::from(sector_bits), mask);
                }
                groups as usize
            }
        }
    }

    /// Load up to 64 bits starting at `bit_start` (which never crosses a
    /// 64-bit word boundary for valid configurations).
    #[inline(always)]
    fn load(&self, bit_start: u64) -> u64 {
        let word = self.data[(bit_start / 64) as usize];
        word >> (bit_start % 64)
    }

    /// OR `mask` into the bits starting at `bit_start`.
    #[inline(always)]
    fn store(&mut self, bit_start: u64, mask: u64) {
        self.data[(bit_start / 64) as usize] |= mask << (bit_start % 64);
    }

    /// Membership probe with the block start bit offset already computed
    /// (used by the staged kernel's probe stage, which resolves from
    /// addresses hashed a chunk earlier).
    #[inline]
    pub(crate) fn contains_at(&self, key: u32, block_start: u64) -> bool {
        let mut probes = [(0u64, 0u64); MAX_PROBES];
        let n = self.probes_at(key, block_start, &mut probes);
        let mut all_present = true;
        for &(bit_start, mask) in &probes[..n] {
            all_present &= self.load(bit_start) & mask == mask;
        }
        all_present
    }

    /// Scalar batched lookup (used as the fallback and by the equivalence tests).
    pub fn contains_batch_scalar(&self, keys: &[u32], sel: &mut SelectionVector) {
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, self.contains(key));
        }
    }

    /// Staged (hash → prefetch → probe) batched lookup through a caller-owned
    /// [`ProbePlan`]: block addresses for a chunk of `plan.distance()` keys
    /// are hashed and prefetched while the previous chunk probes, hiding the
    /// per-block miss latency that dominates once the filter outgrows the
    /// cache. Selections are bit-for-bit identical to
    /// [`Self::contains_batch_scalar`]. [`Filter::contains_batch`] routes
    /// here automatically for large batches against large filters.
    pub fn contains_batch_staged(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        staged::contains_batch_staged(self, keys, sel, plan);
    }

    /// Prefetch the first cache lines of the filter's bit array. Used by the
    /// sharded store to stream the *next* shard's filter in while the
    /// current shard's slice is being probed.
    #[inline]
    pub fn prefetch_storage(&self) {
        probe::prefetch_lines(&self.data);
    }
}

/// Visit every absolute bit position of a probe list, in probe order.
#[inline]
fn for_each_probe_bit(probes: &[(u64, u64)], mut visit: impl FnMut(u64)) {
    for &(bit_start, mask) in probes {
        let mut remaining = mask;
        while remaining != 0 {
            visit(bit_start + u64::from(remaining.trailing_zeros()));
            remaining &= remaining - 1;
        }
    }
}

impl Filter for BlockedBloom {
    fn insert(&mut self, key: u32) -> bool {
        let mut probes = [(0u64, 0u64); MAX_PROBES];
        let n = self.probes(key, &mut probes);
        for &(bit_start, mask) in &probes[..n] {
            self.store(bit_start, mask);
        }
        if let Some(counting) = self.counting.as_mut() {
            for_each_probe_bit(&probes[..n], |bit| counting.increment(bit));
        }
        self.keys_inserted += 1;
        true
    }

    fn contains(&self, key: u32) -> bool {
        let mut probes = [(0u64, 0u64); MAX_PROBES];
        let n = self.probes(key, &mut probes);
        // All variants perform the full amount of work for positive and
        // negative lookups alike (t⁺ = t⁻, §2); the accumulator keeps the
        // loop branch-free.
        let mut all_present = true;
        for &(bit_start, mask) in &probes[..n] {
            all_present &= self.load(bit_start) & mask == mask;
        }
        all_present
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        // Large batches against filters past the cache-footprint floor go
        // through the staged kernel, which hides the per-block miss latency;
        // everything else stays on the SIMD/scalar paths.
        if self.staged_enabled && probe::staged_worthwhile(keys.len(), self.data.len() as u64 * 8) {
            probe::with_thread_plan(|plan| staged::contains_batch_staged(self, keys, sel, plan));
            return;
        }
        if !simd::dispatch(self, keys, sel, self.simd_kernel) {
            self.contains_batch_scalar(keys, sel);
        }
    }

    /// With a counting sidecar ([`Self::enable_counting`]): decrement the
    /// key's probe counters and clear every bit whose counter returns to
    /// zero. As with every shared-bit delete, removing a key that was never
    /// inserted (a false positive passes the membership pre-check) can
    /// corrupt other members — only delete keys known to be present.
    /// Without a sidecar the default refusal stands.
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        if self.counting.is_none() {
            return DeleteOutcome::Unsupported;
        }
        let mut probes = [(0u64, 0u64); MAX_PROBES];
        let n = self.probes(key, &mut probes);
        let present = probes[..n]
            .iter()
            .all(|&(bit_start, mask)| self.load(bit_start) & mask == mask);
        if !present {
            return DeleteOutcome::NotFound;
        }
        let mut counting = self.counting.take().expect("checked above");
        for_each_probe_bit(&probes[..n], |bit| {
            if counting.decrement(bit) {
                self.data[(bit / 64) as usize] &= !(1u64 << (bit % 64));
            }
        });
        self.counting = Some(counting);
        // Saturating: a false-positive delete on a filter whose keys all
        // left already must not wrap the occupancy estimate.
        self.keys_inserted = self.keys_inserted.saturating_sub(1);
        DeleteOutcome::Removed
    }

    fn supports_delete(&self) -> bool {
        self.counting.is_some()
    }

    fn size_bits(&self) -> u64 {
        u64::from(self.modulus.size()) * u64::from(self.config.block_bits)
    }

    fn kind(&self) -> FilterKind {
        FilterKind::Bloom
    }

    fn config_label(&self) -> String {
        self.config.label()
    }
}

/// Convenience constructors for the representative configurations used
/// throughout the paper's figures.
impl BlockedBloom {
    /// Register-blocked filter with 32-bit blocks (Figure 14/15's
    /// `B = 32, k = 4` uses `register_blocked32(n, bpk, 4)`).
    #[must_use]
    pub fn register_blocked32(n: usize, bits_per_key: f64, k: u32) -> Self {
        Self::with_bits_per_key(
            BloomConfig::register_blocked(32, k, Addressing::PowerOfTwo),
            n,
            bits_per_key,
        )
    }

    /// Cache-sectorized filter with 512-bit blocks and 64-bit sectors
    /// (Figure 14/15's `B = 512, k = 8, z = 2`).
    #[must_use]
    pub fn cache_sectorized512(n: usize, bits_per_key: f64, k: u32, z: u32) -> Self {
        Self::with_bits_per_key(
            BloomConfig::cache_sectorized(512, 64, z, k, Addressing::PowerOfTwo),
            n,
            bits_per_key,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_filter::{measured_fpr, KeyGen};

    fn representative_configs() -> Vec<BloomConfig> {
        vec![
            BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo),
            BloomConfig::register_blocked(32, 5, Addressing::Magic),
            BloomConfig::register_blocked(64, 6, Addressing::PowerOfTwo),
            BloomConfig::blocked(512, 8, Addressing::PowerOfTwo),
            BloomConfig::blocked(128, 3, Addressing::Magic),
            BloomConfig::sectorized(512, 64, 8, Addressing::PowerOfTwo),
            BloomConfig::sectorized(256, 32, 8, Addressing::Magic),
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo),
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic),
            BloomConfig::cache_sectorized(512, 64, 4, 8, Addressing::PowerOfTwo),
            BloomConfig::cache_sectorized(1024, 64, 2, 6, Addressing::Magic),
            BloomConfig::sectorized(64, 8, 8, Addressing::PowerOfTwo),
        ]
    }

    #[test]
    fn no_false_negatives_across_variants() {
        let mut gen = KeyGen::new(11);
        let keys = gen.distinct_keys(20_000);
        for config in representative_configs() {
            let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), 12.0);
            for &key in &keys {
                assert!(filter.insert(key));
            }
            for &key in &keys {
                assert!(
                    filter.contains(key),
                    "false negative for {key} in {}",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        for config in representative_configs() {
            let filter = BlockedBloom::with_bits_per_key(config, 1000, 10.0);
            let mut positives = 0;
            for key in 0..10_000u32 {
                if filter.contains(key) {
                    positives += 1;
                }
            }
            assert_eq!(positives, 0, "{}", config.label());
        }
    }

    #[test]
    fn batch_lookup_equals_point_lookup() {
        let mut gen = KeyGen::new(12);
        let keys = gen.distinct_keys(8_192);
        let probes = gen.keys(16_384);
        for config in representative_configs() {
            let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), 10.0);
            for &key in &keys {
                filter.insert(key);
            }
            let mut batch = SelectionVector::new();
            filter.contains_batch(&probes, &mut batch);
            let mut scalar = SelectionVector::new();
            filter.contains_batch_scalar(&probes, &mut scalar);
            assert_eq!(
                batch.as_slice(),
                scalar.as_slice(),
                "batch != scalar for {} (kernel {})",
                config.label(),
                filter.kernel_name()
            );
        }
    }

    #[test]
    fn measured_fpr_tracks_model() {
        let mut gen = KeyGen::new(13);
        let keys = gen.distinct_keys(60_000);
        for (config, rel_tol) in [
            (
                BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo),
                0.35,
            ),
            (BloomConfig::blocked(512, 6, Addressing::PowerOfTwo), 0.35),
            (BloomConfig::sectorized(512, 64, 8, Addressing::Magic), 0.35),
            (
                BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic),
                0.35,
            ),
        ] {
            let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), 12.0);
            for &key in &keys {
                filter.insert(key);
            }
            let measured = measured_fpr(&filter, &keys, 400_000, 17).fpr;
            let modeled = filter.modeled_fpr();
            let rel = (measured - modeled).abs() / modeled;
            assert!(
                rel < rel_tol,
                "{}: measured {measured}, modeled {modeled}, rel {rel}",
                config.label()
            );
        }
    }

    #[test]
    fn magic_addressing_gives_requested_size() {
        let config = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic);
        let requested_bits = 10_000_000u64;
        let filter = BlockedBloom::new(config, requested_bits);
        let actual = filter.size_bits();
        // Magic sizing must stay within a fraction of a percent of the request
        // (§5.2: at most 0.0134 % more blocks), unlike power-of-two sizing.
        assert!(actual >= requested_bits);
        let overshoot = (actual - requested_bits) as f64 / requested_bits as f64;
        assert!(
            overshoot < 0.01,
            "actual {actual} vs requested {requested_bits}"
        );

        let pow2 = BlockedBloom::new(
            BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo),
            requested_bits,
        );
        // Power-of-two rounds up to 16 Mi blocks ⇒ ~1.67x the requested size.
        assert!(pow2.size_bits() > requested_bits * 13 / 10);
    }

    #[test]
    fn size_accounting_and_labels() {
        let filter = BlockedBloom::register_blocked32(1000, 10.0, 4);
        assert_eq!(filter.kind(), FilterKind::Bloom);
        assert!(filter.config_label().contains("register-blocked"));
        assert_eq!(filter.size_bits() % 32, 0);
        assert_eq!(filter.num_blocks(), (filter.size_bits() / 32) as u32);

        let filter = BlockedBloom::cache_sectorized512(1000, 16.0, 8, 2);
        assert_eq!(filter.size_bits() % 512, 0);
    }

    #[test]
    fn duplicate_inserts_are_idempotent_for_membership() {
        let config = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo);
        let mut filter = BlockedBloom::with_bits_per_key(config, 100, 10.0);
        for _ in 0..10 {
            filter.insert(42);
        }
        assert!(filter.contains(42));
        assert_eq!(filter.keys_inserted(), 10);
    }

    #[test]
    fn counting_deletes_clear_bits_without_false_negatives() {
        let mut gen = KeyGen::new(21);
        let keys = gen.distinct_keys(20_000);
        for config in representative_configs() {
            let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), 12.0);
            assert!(!filter.supports_delete());
            filter.enable_counting();
            assert!(filter.supports_delete() && filter.counting_enabled());
            assert!(filter.counting_bytes() >= (filter.size_bits() / 2) as usize);
            for &key in &keys {
                assert!(filter.insert(key));
            }
            let (gone, kept) = keys.split_at(keys.len() / 2);
            for &key in gone {
                assert_eq!(filter.try_delete(key), DeleteOutcome::Removed, "{key}");
            }
            assert_eq!(filter.keys_inserted(), kept.len() as u64);
            // The no-false-negative contract survives every delete...
            for &key in kept {
                assert!(
                    filter.contains(key),
                    "delete corrupted {key} in {}",
                    config.label()
                );
            }
            // ...and the deleted keys physically left (modulo the FPR at the
            // halved occupancy).
            let still = gone.iter().filter(|&&k| filter.contains(k)).count();
            assert!(
                (still as f64) < gone.len() as f64 * 0.05,
                "{still} of {} deleted keys still positive in {}",
                gone.len(),
                config.label()
            );
            // SIMD and scalar kernels agree on the post-delete bit array.
            let probes = KeyGen::new(22).keys(16_384);
            let mut batch = SelectionVector::new();
            filter.contains_batch(&probes, &mut batch);
            let mut scalar = SelectionVector::new();
            filter.contains_batch_scalar(&probes, &mut scalar);
            assert_eq!(batch.as_slice(), scalar.as_slice(), "{}", config.label());
        }
    }

    #[test]
    fn counting_delete_of_absent_key_is_not_found_and_harmless() {
        let config = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic);
        let mut filter = BlockedBloom::with_bits_per_key(config, 1_000, 16.0);
        filter.enable_counting();
        let mut gen = KeyGen::new(23);
        let keys = gen.distinct_keys(1_000);
        for &key in &keys {
            filter.insert(key);
        }
        let absent: Vec<u32> = gen
            .distinct_keys(2_000)
            .into_iter()
            .filter(|k| !filter.contains(*k))
            .collect();
        for &key in absent.iter().take(500) {
            assert_eq!(filter.try_delete(key), DeleteOutcome::NotFound);
        }
        // Double-delete: the second call finds nothing.
        assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Removed);
        assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::NotFound);
        for &key in &keys[1..] {
            assert!(filter.contains(key), "absent-key deletes corrupted {key}");
        }
    }

    #[test]
    fn read_only_clone_answers_identically_without_the_sidecar() {
        let config = BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo);
        let mut filter = BlockedBloom::with_bits_per_key(config, 2_000, 12.0);
        filter.enable_counting();
        let mut gen = KeyGen::new(24);
        let keys = gen.distinct_keys(2_000);
        for &key in &keys {
            filter.insert(key);
        }
        let clone = filter.read_only_clone();
        assert!(!clone.counting_enabled());
        assert_eq!(clone.counting_bytes(), 0);
        assert!(!clone.supports_delete());
        assert_eq!(clone.keys_inserted(), filter.keys_inserted());
        for key in keys.iter().copied().chain(gen.keys(4_000)) {
            assert_eq!(clone.contains(key), filter.contains(key));
        }
    }

    #[test]
    #[should_panic(expected = "counting must be enabled before the first insert")]
    fn counting_cannot_be_enabled_late() {
        let config = BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo);
        let mut filter = BlockedBloom::with_bits_per_key(config, 100, 12.0);
        filter.insert(1);
        filter.enable_counting();
    }

    #[test]
    #[should_panic(expected = "invalid Bloom configuration")]
    fn invalid_configuration_panics() {
        let bad = BloomConfig {
            block_bits: 64,
            sector_bits: 512,
            groups: 1,
            k: 8,
            addressing: Addressing::PowerOfTwo,
        };
        let _ = BlockedBloom::new(bad, 1 << 20);
    }
}
