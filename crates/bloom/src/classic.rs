//! The classic (unblocked) Bloom filter.
//!
//! Kept as a baseline: the paper's §2 explains why classic Bloom filters are
//! rarely performance-optimal — positive lookups touch `k` cache lines and
//! cannot be SIMDized effectively — but they remain the precision yardstick
//! (Figure 4a's blue line) and exhibit the asymmetric lookup cost
//! (`t⁺_l ≫ t⁻_l`) that motivates the early-exit term in the overhead model.

use crate::counting::CountingSidecar;
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_hash::mul::{mix64, KNUTH64};

/// A classic Bloom filter over `m` bits with `k` hash functions.
///
/// Negative lookups exit as soon as an unset bit is found, so their cost is
/// much lower than positive lookups for sparsely populated filters — the
/// `t⁻_l`/`t⁺_l` asymmetry discussed in §2.
#[derive(Debug, Clone)]
pub struct ClassicBloom {
    words: Vec<u64>,
    m_bits: u64,
    k: u32,
    keys_inserted: u64,
    /// Optional counting sidecar ([`Self::enable_counting`]): one saturating
    /// counter per bit, making [`Filter::try_delete`] clear bits in place.
    counting: Option<Box<CountingSidecar>>,
}

impl ClassicBloom {
    /// Create a filter with (at least) `m_bits` bits and `k` hash functions.
    ///
    /// The bit count is rounded up to a multiple of 64. Unlike the blocked
    /// variants, no power-of-two constraint applies: the classic filter uses a
    /// 64-bit modulo per probe (which is exactly why it is slow).
    ///
    /// # Panics
    /// Panics if `m_bits` is zero or `k` is outside `[1, 32]`.
    #[must_use]
    pub fn new(m_bits: u64, k: u32) -> Self {
        assert!(m_bits > 0, "filter size must be positive");
        assert!((1..=32).contains(&k), "k must be in [1, 32]");
        let words = m_bits.div_ceil(64);
        Self {
            words: vec![0u64; usize::try_from(words).expect("filter too large for address space")],
            m_bits: words * 64,
            k,
            keys_inserted: 0,
            counting: None,
        }
    }

    /// Create a filter sized for `n` keys at a given bits-per-key budget.
    #[must_use]
    pub fn with_bits_per_key(n: usize, bits_per_key: f64, k: u32) -> Self {
        let m_bits = ((n as f64) * bits_per_key).ceil().max(64.0) as u64;
        Self::new(m_bits, k)
    }

    /// The i-th probe position for a key: independent hash functions derived
    /// from two 64-bit hashes via the Kirsch–Mitzenmacher double-hashing
    /// scheme `h1 + i·h2` (the standard way to avoid computing `k` full
    /// hashes).
    #[inline]
    fn bit_position(&self, key: u32, i: u32) -> u64 {
        let h1 = mix64(u64::from(key));
        let h2 = u64::from(key).wrapping_mul(KNUTH64) | 1;
        h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.m_bits
    }

    /// Number of hash functions.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of keys inserted so far.
    #[must_use]
    pub fn keys_inserted(&self) -> u64 {
        self.keys_inserted
    }

    /// The analytical false-positive rate (Eq. 2) given the number of keys
    /// actually inserted.
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        pof_model::f_std(self.m_bits as f64, self.keys_inserted as f64, self.k)
    }

    /// Fraction of bits set (the filter's fill factor).
    #[must_use]
    pub fn fill_factor(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| u64::from(w.count_ones())).sum();
        set as f64 / self.m_bits as f64
    }

    /// Attach a [`CountingSidecar`] (one 4-bit saturating counter per bit,
    /// promoting to 8-bit on saturation): [`Filter::try_delete`] then clears
    /// bits in place instead of refusing. See
    /// [`BlockedBloom::enable_counting`](crate::BlockedBloom::enable_counting)
    /// for the memory cost and semantics; the layouts differ, the contract is
    /// identical.
    ///
    /// # Panics
    /// Panics if any key was already inserted.
    pub fn enable_counting(&mut self) {
        assert_eq!(
            self.keys_inserted, 0,
            "counting must be enabled before the first insert"
        );
        self.counting = Some(Box::new(CountingSidecar::new(self.m_bits)));
    }

    /// Is a counting sidecar attached (i.e. does this filter delete)?
    #[must_use]
    pub fn counting_enabled(&self) -> bool {
        self.counting.is_some()
    }

    /// Heap bytes held by the counting sidecar (0 without one).
    #[must_use]
    pub fn counting_bytes(&self) -> usize {
        self.counting.as_ref().map_or(0, |c| c.bytes())
    }

    /// Prefetch the first cache lines of the bit array (the classic filter
    /// scatters probes over the whole array, so only the head can usefully
    /// be warmed). Used by the sharded store to stream the next shard's
    /// filter in while the current one is being probed.
    #[inline]
    pub fn prefetch_storage(&self) {
        pof_filter::probe::prefetch_lines(&self.words);
    }

    /// Borrow the raw bit-array words for snapshot serialization.
    #[must_use]
    pub fn snapshot_words(&self) -> &[u64] {
        &self.words
    }

    /// Borrow the counting sidecar, if one is attached (persisted alongside
    /// the bit array so counting shards keep deleting after recovery).
    #[must_use]
    pub fn counting_sidecar(&self) -> Option<&CountingSidecar> {
        self.counting.as_deref()
    }

    /// Rebuild a filter from persisted raw parts. `m_bits` must be the
    /// word-rounded size a previous instance reported (`size_bits`), so the
    /// re-derived layout matches; fails when `words` or the sidecar width
    /// disagrees with it.
    pub fn restore(
        m_bits: u64,
        k: u32,
        keys_inserted: u64,
        words: Vec<u64>,
        counting: Option<CountingSidecar>,
    ) -> Result<Self, &'static str> {
        let mut filter = Self::new(m_bits, k);
        if filter.m_bits != m_bits {
            return Err("snapshot size is not word-aligned");
        }
        if filter.words.len() != words.len() {
            return Err("bit-array word count does not match the size");
        }
        if let Some(sidecar) = &counting {
            if sidecar.len() != m_bits {
                return Err("counting sidecar width does not match the filter");
            }
        }
        filter.words = words;
        filter.keys_inserted = keys_inserted;
        filter.counting = counting.map(Box::new);
        Ok(filter)
    }

    /// Clone the read side only (bit array, no counting sidecar): answers
    /// every probe identically, reports `supports_delete() == false`.
    #[must_use]
    pub fn read_only_clone(&self) -> Self {
        Self {
            words: self.words.clone(),
            m_bits: self.m_bits,
            k: self.k,
            keys_inserted: self.keys_inserted,
            counting: None,
        }
    }

    /// Lookup counting how many of the `k` probes were actually performed
    /// (early exit on the first unset bit). Used by the `classic_early_exit`
    /// bench to demonstrate the `t⁻ ≪ t⁺` asymmetry.
    #[must_use]
    pub fn contains_counting_probes(&self, key: u32) -> (bool, u32) {
        for i in 0..self.k {
            let pos = self.bit_position(key, i);
            let word = self.words[(pos / 64) as usize];
            if word & (1u64 << (pos % 64)) == 0 {
                return (false, i + 1);
            }
        }
        (true, self.k)
    }
}

impl Filter for ClassicBloom {
    fn insert(&mut self, key: u32) -> bool {
        for i in 0..self.k {
            let pos = self.bit_position(key, i);
            self.words[(pos / 64) as usize] |= 1u64 << (pos % 64);
            // One increment per probe, duplicate positions included: the
            // delete path replays the identical probe sequence, so the
            // counts cancel exactly.
            if let Some(counting) = self.counting.as_mut() {
                counting.increment(pos);
            }
        }
        self.keys_inserted += 1;
        true
    }

    fn contains(&self, key: u32) -> bool {
        self.contains_counting_probes(key).0
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, self.contains(key));
        }
    }

    /// With a counting sidecar ([`Self::enable_counting`]): decrement the
    /// key's probe counters and clear every bit whose counter returns to
    /// zero. Only delete keys known to be present — a false positive passes
    /// the membership pre-check, and decrementing its shared bits can
    /// corrupt other members. Without a sidecar the default refusal stands.
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        if self.counting.is_none() {
            return DeleteOutcome::Unsupported;
        }
        if !self.contains(key) {
            return DeleteOutcome::NotFound;
        }
        let mut counting = self.counting.take().expect("checked above");
        for i in 0..self.k {
            let pos = self.bit_position(key, i);
            if counting.decrement(pos) {
                self.words[(pos / 64) as usize] &= !(1u64 << (pos % 64));
            }
        }
        self.counting = Some(counting);
        self.keys_inserted = self.keys_inserted.saturating_sub(1);
        DeleteOutcome::Removed
    }

    fn supports_delete(&self) -> bool {
        self.counting.is_some()
    }

    fn size_bits(&self) -> u64 {
        self.m_bits
    }

    fn kind(&self) -> FilterKind {
        FilterKind::Bloom
    }

    fn config_label(&self) -> String {
        format!("classic-bloom(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_filter::{measured_fpr, KeyGen};

    #[test]
    fn no_false_negatives() {
        let mut gen = KeyGen::new(1);
        let keys = gen.distinct_keys(20_000);
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), 10.0, 7);
        for &k in &keys {
            assert!(filter.insert(k));
        }
        for &k in &keys {
            assert!(filter.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn fpr_close_to_model() {
        let mut gen = KeyGen::new(2);
        let keys = gen.distinct_keys(50_000);
        let bits_per_key = 10.0;
        let k = 7;
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), bits_per_key, k);
        for &key in &keys {
            filter.insert(key);
        }
        let measurement = measured_fpr(&filter, &keys, 200_000, 3);
        let modeled = pof_model::f_std(filter.size_bits() as f64, keys.len() as f64, k);
        assert!(
            (measurement.fpr - modeled).abs() / modeled < 0.25,
            "measured {} vs modeled {modeled}",
            measurement.fpr
        );
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let filter = ClassicBloom::new(1 << 16, 5);
        for key in 0..10_000u32 {
            assert!(!filter.contains(key));
        }
        assert_eq!(filter.fill_factor(), 0.0);
    }

    #[test]
    fn early_exit_probe_counts() {
        let mut gen = KeyGen::new(4);
        let keys = gen.distinct_keys(10_000);
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), 12.0, 8);
        for &key in &keys {
            filter.insert(key);
        }
        // Positive lookups always perform all k probes.
        for &key in keys.iter().take(500) {
            let (found, probes) = filter.contains_counting_probes(key);
            assert!(found);
            assert_eq!(probes, 8);
        }
        // Negative lookups should on average exit after ~1/(1-fill) probes,
        // far below k.
        let mut total_probes = 0u64;
        let negatives = KeyGen::new(5).distinct_keys(10_000);
        let mut tested = 0u64;
        for &key in &negatives {
            if keys.contains(&key) {
                continue;
            }
            let (_, probes) = filter.contains_counting_probes(key);
            total_probes += u64::from(probes);
            tested += 1;
        }
        let avg = total_probes as f64 / tested as f64;
        assert!(
            avg < 2.5,
            "average negative probe count {avg} should be far below k=8"
        );
    }

    #[test]
    fn batch_matches_point_lookups() {
        let mut gen = KeyGen::new(6);
        let keys = gen.distinct_keys(5_000);
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), 8.0, 5);
        for &key in &keys {
            filter.insert(key);
        }
        let probes = gen.keys(10_000);
        let mut sel = SelectionVector::new();
        filter.contains_batch(&probes, &mut sel);
        let expected: Vec<u32> = probes
            .iter()
            .enumerate()
            .filter(|(_, k)| filter.contains(**k))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel.as_slice(), expected.as_slice());
    }

    #[test]
    fn size_is_rounded_to_words() {
        let filter = ClassicBloom::new(100, 3);
        assert_eq!(filter.size_bits(), 128);
        assert_eq!(filter.config_label(), "classic-bloom(k=3)");
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_zero_k() {
        let _ = ClassicBloom::new(1024, 0);
    }

    #[test]
    fn counting_deletes_roundtrip() {
        use pof_filter::DeleteOutcome;
        let mut gen = KeyGen::new(7);
        let keys = gen.distinct_keys(10_000);
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), 12.0, 7);
        assert!(!filter.supports_delete());
        filter.enable_counting();
        assert!(filter.supports_delete());
        assert!(filter.counting_bytes() >= (filter.size_bits() / 2) as usize);
        for &key in &keys {
            filter.insert(key);
        }
        let (gone, kept) = keys.split_at(keys.len() / 2);
        for &key in gone {
            assert_eq!(filter.try_delete(key), DeleteOutcome::Removed);
        }
        for &key in kept {
            assert!(filter.contains(key), "delete corrupted {key}");
        }
        let still = gone.iter().filter(|&&k| filter.contains(k)).count();
        assert!(
            (still as f64) < gone.len() as f64 * 0.05,
            "{still} deleted keys still positive"
        );
        // The read-only clone drops the sidecar but answers identically.
        let clone = filter.read_only_clone();
        assert!(!clone.counting_enabled() && !clone.supports_delete());
        for &key in kept {
            assert!(clone.contains(key));
        }
    }
}
