//! Bloom filter variants for performance-optimal filtering.
//!
//! This crate implements every Bloom filter variant the paper evaluates:
//!
//! * [`ClassicBloom`] — the textbook unblocked filter (baseline; §1–2),
//! * [`BlockedBloom`] — a single runtime-configured implementation of the
//!   blocked family: plain blocked, **register-blocked**, sectorized and
//!   **cache-sectorized** filters (§3.1–3.2), with power-of-two or
//!   magic-modulo addressing (§5.2) and AVX2 gather-based batch lookups
//!   (§5.1),
//! * [`BloomConfig`] / [`BloomVariant`] — the configuration space the
//!   performance-optimal skylines sweep (Figure 12),
//! * [`CountingSidecar`] — an optional per-bit counter array
//!   ([`BlockedBloom::enable_counting`] / [`ClassicBloom::enable_counting`])
//!   that turns any variant into a *counting* Bloom filter: deletes clear
//!   bits in place, the probe side stays byte-for-byte a plain Bloom filter.
//!
//! The register-blocked and cache-sectorized variants are the paper's new
//! contributions; the analytical false-positive models for all of them live in
//! `pof-model` and are cross-validated against these implementations by this
//! crate's test suite.
//!
//! # Example
//!
//! ```
//! use pof_bloom::{Addressing, BloomConfig, BlockedBloom};
//! use pof_filter::{Filter, SelectionVector};
//!
//! // The paper's canonical high-throughput configuration:
//! // cache-sectorized, 512-bit blocks, 64-bit sectors, z = 2, k = 8.
//! let config = BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic);
//! let mut filter = BlockedBloom::with_bits_per_key(config, 1_000, 16.0);
//! for key in 0..1_000u32 {
//!     filter.insert(key);
//! }
//! assert!(filter.contains(42));
//!
//! let probe: Vec<u32> = (0..2_000u32).collect();
//! let mut sel = SelectionVector::new();
//! filter.contains_batch(&probe, &mut sel);
//! assert!(sel.len() >= 1_000); // all members plus a few false positives
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod blocked;
pub mod classic;
pub mod config;
pub mod counting;
mod simd;
mod staged;

pub use blocked::BlockedBloom;
pub use classic::ClassicBloom;
pub use config::{Addressing, BloomConfig, BloomVariant};
pub use counting::CountingSidecar;
