//! A counting sidecar for Bloom filters: one saturating counter per filter
//! bit, so bits can be *cleared* again when the last key referencing them is
//! deleted.
//!
//! Plain Bloom filters share bits between keys, which is exactly why they
//! cannot delete: unsetting a bit would introduce false negatives for every
//! other key that hashed onto it. The classic fix (counting Bloom filters,
//! cf. the deletion-capable AMQs surveyed in "Don't Thrash: How to Cache
//! Your Hash on Flash") is to keep a counter per bit — insert increments,
//! delete decrements, and the presence bit is cleared when its counter
//! returns to zero.
//!
//! This sidecar mirrors the owning filter's bit layout one-to-one (counter
//! `i` shadows bit `i`, whatever the blocked/sectorized geometry), so the
//! *probe* side of the filter is untouched: lookups never read the sidecar,
//! SIMD kernels keep operating on the plain bit array, and the sidecar can be
//! dropped wholesale when a clone only needs the read side.
//!
//! Counter width is adaptive: counters start at 4 bits (two per byte — with
//! typical bits-per-key budgets the expected per-bit load is below 1, so 4
//! bits almost always suffice), and the whole array promotes to 8 bits the
//! first time any counter would outgrow 15. An 8-bit counter that would
//! outgrow 255 sticks there permanently: a *stuck* counter is never
//! decremented and its bit is never cleared, trading a sliver of
//! false-positive rate for the no-false-negative guarantee.

/// Largest value a 4-bit counter can hold before the array promotes.
const NIBBLE_MAX: u8 = 0xF;
/// Largest value an 8-bit counter can hold; beyond this it is stuck.
const BYTE_MAX: u8 = u8::MAX;

/// The adaptive counter storage: two 4-bit counters per byte, or one byte
/// per counter after promotion.
#[derive(Debug, Clone)]
enum Counters {
    /// Counter `i` lives in nibble `i % 2` of byte `i / 2`.
    Nibble(Vec<u8>),
    /// Counter `i` lives in byte `i`.
    Byte(Vec<u8>),
}

/// One saturating counter per bit of the owning filter.
#[derive(Debug, Clone)]
pub struct CountingSidecar {
    counters: Counters,
    /// Number of counters (the owning filter's bit count).
    bits: u64,
    /// Counters that genuinely overflowed (an increment arrived while the
    /// counter already held the 8-bit maximum). A stuck counter's true count
    /// is unrepresentable, so it is never decremented and its bit never
    /// clears. Kept sparse: a counter holding *exactly* 255 is still exact
    /// and still counts down normally.
    stuck: std::collections::HashSet<u64>,
}

impl CountingSidecar {
    /// Create a sidecar of `bits` zeroed 4-bit counters, mirroring a filter
    /// of `bits` bits.
    #[must_use]
    pub fn new(bits: u64) -> Self {
        let bytes = usize::try_from(bits.div_ceil(2)).expect("sidecar too large");
        Self {
            counters: Counters::Nibble(vec![0u8; bytes]),
            bits,
            stuck: std::collections::HashSet::new(),
        }
    }

    /// Number of counters (= the mirrored filter's bit count).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.bits
    }

    /// True if the sidecar mirrors a zero-bit filter.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Heap bytes held by the counter array.
    #[must_use]
    pub fn bytes(&self) -> usize {
        match &self.counters {
            Counters::Nibble(v) | Counters::Byte(v) => v.len(),
        }
    }

    /// Has the array promoted from 4-bit to 8-bit counters?
    #[must_use]
    pub fn promoted(&self) -> bool {
        matches!(self.counters, Counters::Byte(_))
    }

    /// Counters that overflowed the 8-bit maximum and are permanently stuck.
    /// Each stuck counter pins one filter bit set forever (a bounded
    /// false-positive cost, never a false negative).
    #[must_use]
    pub fn stuck_counters(&self) -> u64 {
        self.stuck.len() as u64
    }

    /// Current value of counter `bit` (stuck counters read as the maximum).
    #[must_use]
    pub fn count(&self, bit: u64) -> u8 {
        debug_assert!(bit < self.bits, "counter index out of range");
        match &self.counters {
            Counters::Nibble(v) => {
                let byte = v[(bit / 2) as usize];
                (byte >> ((bit % 2) * 4)) & NIBBLE_MAX
            }
            Counters::Byte(v) => v[bit as usize],
        }
    }

    /// Widen every counter to a full byte. Called once, on the first
    /// increment that would outgrow a nibble.
    fn promote(&mut self) {
        if let Counters::Nibble(nibbles) = &self.counters {
            let mut bytes = vec![0u8; usize::try_from(self.bits).expect("sidecar too large")];
            for (i, slot) in bytes.iter_mut().enumerate() {
                *slot = (nibbles[i / 2] >> ((i % 2) * 4)) & NIBBLE_MAX;
            }
            self.counters = Counters::Byte(bytes);
        }
    }

    /// Increment counter `bit` (called once per probe bit on insert).
    /// Promotes the array to 8-bit counters when a nibble would overflow; an
    /// 8-bit counter that would overflow (the increment *past* 255, not the
    /// one that reaches it — a counter holding exactly 255 is still exact)
    /// sticks permanently instead.
    pub fn increment(&mut self, bit: u64) {
        debug_assert!(bit < self.bits, "counter index out of range");
        if let Counters::Nibble(v) = &mut self.counters {
            let slot = &mut v[(bit / 2) as usize];
            let shift = (bit % 2) * 4;
            let value = (*slot >> shift) & NIBBLE_MAX;
            if value < NIBBLE_MAX {
                *slot += 1 << shift;
                return;
            }
            self.promote();
        }
        let Counters::Byte(v) = &mut self.counters else {
            unreachable!("promote() always leaves byte counters");
        };
        let slot = &mut v[bit as usize];
        if *slot == BYTE_MAX {
            // The true count is now unrepresentable: stick the counter.
            self.stuck.insert(bit);
            return;
        }
        *slot += 1;
    }

    /// Export the raw persisted state: `(promoted, counter bytes, stuck
    /// counter indexes — sorted for deterministic snapshots)`. Together with
    /// [`Self::len`] this is everything [`Self::restore`] needs.
    #[must_use]
    pub fn snapshot_parts(&self) -> (bool, &[u8], Vec<u64>) {
        let bytes = match &self.counters {
            Counters::Nibble(v) | Counters::Byte(v) => v.as_slice(),
        };
        let mut stuck: Vec<u64> = self.stuck.iter().copied().collect();
        stuck.sort_unstable();
        (self.promoted(), bytes, stuck)
    }

    /// Rebuild a sidecar from the parts exported by
    /// [`Self::snapshot_parts`]. Validates that the counter array matches
    /// the claimed width/bit count and that stuck indexes are in range —
    /// snapshot payloads are CRC-guarded, so a mismatch means version skew,
    /// not bit rot.
    pub fn restore(
        bits: u64,
        promoted: bool,
        counters: Vec<u8>,
        stuck: Vec<u64>,
    ) -> Result<Self, &'static str> {
        let expected = if promoted {
            usize::try_from(bits).map_err(|_| "sidecar too large")?
        } else {
            usize::try_from(bits.div_ceil(2)).map_err(|_| "sidecar too large")?
        };
        if counters.len() != expected {
            return Err("counter array length does not match bit count");
        }
        if !promoted && !stuck.is_empty() {
            return Err("stuck counters recorded for an unpromoted sidecar");
        }
        if stuck.iter().any(|&bit| bit >= bits) {
            return Err("stuck counter index out of range");
        }
        Ok(Self {
            counters: if promoted {
                Counters::Byte(counters)
            } else {
                Counters::Nibble(counters)
            },
            bits,
            stuck: stuck.into_iter().collect(),
        })
    }

    /// Decrement counter `bit` (called once per probe bit on delete).
    /// Returns `true` when the counter reached zero — the caller must then
    /// clear the mirrored presence bit. Stuck counters (and, defensively,
    /// counters already at zero) are left untouched and return `false`.
    pub fn decrement(&mut self, bit: u64) -> bool {
        debug_assert!(bit < self.bits, "counter index out of range");
        match &mut self.counters {
            Counters::Nibble(v) => {
                let slot = &mut v[(bit / 2) as usize];
                let shift = (bit % 2) * 4;
                let value = (*slot >> shift) & NIBBLE_MAX;
                if value == 0 {
                    return false;
                }
                *slot -= 1 << shift;
                value == 1
            }
            Counters::Byte(v) => {
                if self.stuck.contains(&bit) {
                    return false;
                }
                let slot = &mut v[bit as usize];
                if *slot == 0 {
                    return false;
                }
                *slot -= 1;
                *slot == 0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_decrement_roundtrip_clears_at_zero() {
        let mut sidecar = CountingSidecar::new(128);
        assert_eq!(sidecar.len(), 128);
        assert!(!sidecar.is_empty());
        sidecar.increment(7);
        sidecar.increment(7);
        assert_eq!(sidecar.count(7), 2);
        assert!(!sidecar.decrement(7), "counter still 1, bit must stay");
        assert!(sidecar.decrement(7), "counter hit 0, bit must clear");
        assert_eq!(sidecar.count(7), 0);
        // Defensive: decrementing a zero counter is a no-op.
        assert!(!sidecar.decrement(7));
        // Neighbouring nibble is untouched throughout.
        assert_eq!(sidecar.count(6), 0);
    }

    #[test]
    fn nibble_pairs_do_not_interfere() {
        let mut sidecar = CountingSidecar::new(8);
        for _ in 0..5 {
            sidecar.increment(2);
        }
        for _ in 0..3 {
            sidecar.increment(3);
        }
        assert_eq!(sidecar.count(2), 5);
        assert_eq!(sidecar.count(3), 3);
        assert!(!sidecar.decrement(2));
        assert_eq!(sidecar.count(2), 4);
        assert_eq!(sidecar.count(3), 3);
    }

    #[test]
    fn promotes_to_bytes_past_fifteen_and_preserves_counts() {
        let mut sidecar = CountingSidecar::new(64);
        for _ in 0..9 {
            sidecar.increment(10);
        }
        assert!(!sidecar.promoted());
        let nibble_bytes = sidecar.bytes();
        for _ in 0..11 {
            sidecar.increment(11);
        }
        assert!(!sidecar.promoted());
        // The 16th increment of one counter promotes the whole array.
        for _ in 0..7 {
            sidecar.increment(11);
        }
        assert!(sidecar.promoted());
        assert_eq!(sidecar.bytes(), nibble_bytes * 2);
        assert_eq!(sidecar.count(10), 9, "promotion must preserve counts");
        assert_eq!(sidecar.count(11), 18);
        for _ in 0..18 {
            let cleared = sidecar.decrement(11);
            assert_eq!(cleared, sidecar.count(11) == 0);
        }
        assert_eq!(sidecar.count(11), 0);
    }

    #[test]
    fn byte_counters_stick_only_past_the_maximum() {
        // A counter that reaches *exactly* 255 is still an exact count: it
        // must decrement all the way back down and clear its bit.
        let mut exact = CountingSidecar::new(4);
        for _ in 0..255 {
            exact.increment(1);
        }
        assert_eq!(exact.count(1), 255);
        assert_eq!(exact.stuck_counters(), 0, "255 is representable");
        for remaining in (0..255u32).rev() {
            assert_eq!(exact.decrement(1), remaining == 0);
        }
        assert_eq!(exact.count(1), 0);

        // The 256th increment is a genuine overflow: the counter sticks.
        let mut sidecar = CountingSidecar::new(4);
        for _ in 0..300 {
            sidecar.increment(1);
        }
        assert!(sidecar.promoted());
        assert_eq!(sidecar.count(1), 255);
        assert_eq!(sidecar.stuck_counters(), 1);
        // A stuck counter never decrements: its bit can never clear, which
        // is the conservative (no-false-negative) failure mode.
        for _ in 0..300 {
            assert!(!sidecar.decrement(1));
        }
        assert_eq!(sidecar.count(1), 255);
        // Other counters still behave normally.
        sidecar.increment(2);
        assert!(sidecar.decrement(2));
    }

    #[test]
    fn memory_accounting_is_half_a_byte_per_bit_until_promotion() {
        let sidecar = CountingSidecar::new(1024);
        assert_eq!(sidecar.bytes(), 512);
        let odd = CountingSidecar::new(1023);
        assert_eq!(odd.bytes(), 512, "odd bit counts round the pair up");
    }
}
