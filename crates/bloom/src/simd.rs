//! SIMD batch-lookup kernels (AVX2).
//!
//! Following §5.1, one key is processed per 32-bit SIMD lane using GATHER
//! instructions: eight lookups proceed in parallel per AVX2 iteration. Two
//! kernels are provided:
//!
//! * [`Kernel::Avx2Register32`] — register-blocked filters with 32-bit blocks:
//!   one gather and one compare resolve eight keys;
//! * [`Kernel::Avx2Sector64`] — sectorized and cache-sectorized filters with
//!   64-bit sectors: per sector group, the two 32-bit halves of the probed
//!   sector are gathered and compared against the per-lane search masks.
//!
//! Both kernels reproduce the *exact* probe sequence of the scalar code in
//! [`crate::blocked`] (same hash constants, same bit-consumption order), so
//! the scalar and SIMD paths return identical results — a property the test
//! suite verifies. Filters whose configuration has no SIMD kernel fall back
//! to the scalar path; the same happens on CPUs without AVX2.

use crate::blocked::BlockedBloom;
use crate::config::{BloomConfig, BloomVariant};
use pof_filter::SelectionVector;
use pof_hash::Modulus;

/// The batch-lookup kernel selected for a filter instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// Scalar fallback (also used on non-x86 targets).
    Scalar,
    /// AVX2 kernel for register-blocked filters with 32-bit blocks.
    Avx2Register32,
    /// AVX2 kernel for (cache-)sectorized filters with 64-bit sectors.
    Avx2Sector64,
}

impl Kernel {
    /// Pick the best kernel for a configuration on the current CPU.
    pub(crate) fn select(config: &BloomConfig) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                match config.variant() {
                    BloomVariant::RegisterBlocked if config.block_bits == 32 => {
                        return Self::Avx2Register32;
                    }
                    BloomVariant::Sectorized | BloomVariant::CacheSectorized
                        if config.sector_bits == 64 =>
                    {
                        return Self::Avx2Sector64;
                    }
                    _ => {}
                }
            }
        }
        let _ = config;
        Self::Scalar
    }

    /// Human-readable kernel name (reported by benches and EXPERIMENTS.md).
    pub(crate) fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2Register32 => "avx2-register32",
            Self::Avx2Sector64 => "avx2-sector64",
        }
    }
}

/// Run the batched lookup with the given kernel. Returns `false` if the caller
/// should use the scalar path instead.
pub(crate) fn dispatch(
    filter: &BlockedBloom,
    keys: &[u32],
    sel: &mut SelectionVector,
    kernel: Kernel,
) -> bool {
    match kernel {
        Kernel::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2Register32 => {
            // SAFETY: the kernel was only selected when AVX2 is available.
            unsafe { avx2::register32(filter, keys, sel) };
            true
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2Sector64 => {
            // SAFETY: the kernel was only selected when AVX2 is available.
            unsafe { avx2::sector64(filter, keys, sel) };
            true
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use crate::blocked::{BLOCK_HASH_C, STREAM_SEED_C, STREAM_STEP_C};
    use pof_filter::Filter;
    use std::arch::x86_64::*;

    /// Reduce eight 32-bit hash values to block indexes according to the
    /// filter's modulus (bitwise AND for powers of two, multiply–shift for
    /// magic addressing — the SIMD form of Eq. 9).
    // SAFETY: register-only AVX2 arithmetic, no memory access; reachable
    // only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce(h: __m256i, modulus: &Modulus) -> __m256i {
        match modulus {
            Modulus::PowerOfTwo { log2 } => {
                let mask = _mm256_set1_epi32(((1u64 << log2) - 1) as i32);
                _mm256_and_si256(h, mask)
            }
            Modulus::Magic(m) => {
                let magic = _mm256_set1_epi32(m.magic as i32);
                let hi64_mask = _mm256_set1_epi64x(0xFFFF_FFFF_0000_0000u64 as i64);
                // mulhi_u32 per lane via two 32x32→64 multiplies.
                let prod_even = _mm256_mul_epu32(h, magic);
                let prod_odd = _mm256_mul_epu32(_mm256_srli_epi64::<32>(h), magic);
                let hi_even = _mm256_srli_epi64::<32>(prod_even);
                let hi_odd = _mm256_and_si256(prod_odd, hi64_mask);
                let mulhi = _mm256_or_si256(hi_even, hi_odd);
                let q = _mm256_srl_epi32(mulhi, _mm_cvtsi32_si128(m.shift as i32));
                let d = _mm256_set1_epi32(m.divisor as i32);
                _mm256_sub_epi32(h, _mm256_mullo_epi32(q, d))
            }
        }
    }

    /// Advance the per-lane bit-addressing stream and return its top `nbits`
    /// bits — the SIMD twin of `blocked::next_bits`.
    // SAFETY: register-only AVX2 arithmetic on caller-owned lane state;
    // reachable only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn next_bits(state: &mut __m256i, step: __m256i, nbits: u32) -> __m256i {
        debug_assert!(nbits > 0);
        *state = _mm256_mullo_epi32(*state, step);
        _mm256_srl_epi32(*state, _mm_cvtsi32_si128((32 - nbits) as i32))
    }

    /// Append the qualifying lanes of an 8-lane comparison result to `sel`.
    // SAFETY: unsafe only for the `target_feature` contract — the body is
    // plain safe code writing through a borrowed selection vector; reachable
    // only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn push_lanes(sel: &mut SelectionVector, base: usize, lane_mask: i32) {
        for lane in 0..8u32 {
            sel.push_if(base as u32 + lane, (lane_mask >> lane) & 1 == 1);
        }
    }

    /// AVX2 batch lookup for register-blocked filters with 32-bit blocks.
    ///
    /// # Safety
    /// Requires AVX2. The filter's storage must outlive the call (guaranteed
    /// by the shared borrow).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn register32(
        filter: &BlockedBloom,
        keys: &[u32],
        sel: &mut SelectionVector,
    ) {
        let config = *filter.config();
        let words = filter.words();
        let base = words.as_ptr().cast::<i32>();
        let modulus = filter.modulus();
        let block_c = _mm256_set1_epi32(BLOCK_HASH_C as i32);
        let seed_c = _mm256_set1_epi32(STREAM_SEED_C as i32);
        let step_c = _mm256_set1_epi32(STREAM_STEP_C as i32);
        let one = _mm256_set1_epi32(1);

        let chunks = keys.len() / 8;
        for chunk in 0..chunks {
            let offset = chunk * 8;
            let key_vec = _mm256_loadu_si256(keys.as_ptr().add(offset).cast());
            let block_idx = reduce(_mm256_mullo_epi32(key_vec, block_c), modulus);
            // One gather resolves the whole block for all eight lanes.
            let block_words = _mm256_i32gather_epi32::<4>(base, block_idx);

            let mut state = _mm256_mullo_epi32(key_vec, seed_c);
            let mut mask = _mm256_setzero_si256();
            for _ in 0..config.k {
                let bit = next_bits(&mut state, step_c, 5);
                mask = _mm256_or_si256(mask, _mm256_sllv_epi32(one, bit));
            }
            let hit = _mm256_cmpeq_epi32(_mm256_and_si256(block_words, mask), mask);
            let lane_mask = _mm256_movemask_ps(_mm256_castsi256_ps(hit));
            push_lanes(sel, offset, lane_mask);
        }

        for (i, &key) in keys.iter().enumerate().skip(chunks * 8) {
            sel.push_if(i as u32, filter.contains(key));
        }
    }

    /// AVX2 batch lookup for sectorized and cache-sectorized filters with
    /// 64-bit sectors. Each probed sector is loaded as two 32-bit gathers
    /// (low/high half) and compared against per-lane 64-bit search masks.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sector64(filter: &BlockedBloom, keys: &[u32], sel: &mut SelectionVector) {
        let config = *filter.config();
        let words = filter.words();
        let base = words.as_ptr().cast::<i32>();
        let modulus = filter.modulus();

        let sectors = config.sectors();
        let groups = config.groups;
        let sectors_per_group = sectors / groups;
        let bits_per_group = config.k / groups;
        let words_per_block = config.block_bits / 32;

        let block_c = _mm256_set1_epi32(BLOCK_HASH_C as i32);
        let seed_c = _mm256_set1_epi32(STREAM_SEED_C as i32);
        let step_c = _mm256_set1_epi32(STREAM_STEP_C as i32);
        let one = _mm256_set1_epi32(1);
        let thirty_one = _mm256_set1_epi32(31);

        let chunks = keys.len() / 8;
        for chunk in 0..chunks {
            let offset = chunk * 8;
            let key_vec = _mm256_loadu_si256(keys.as_ptr().add(offset).cast());
            let block_idx = reduce(_mm256_mullo_epi32(key_vec, block_c), modulus);
            let block_word0 =
                _mm256_mullo_epi32(block_idx, _mm256_set1_epi32(words_per_block as i32));

            let mut state = _mm256_mullo_epi32(key_vec, seed_c);
            let mut all_hit = _mm256_set1_epi32(-1);

            for group in 0..groups {
                // Choose the sector within the group (0 bits consumed when the
                // group has a single sector — plain sectorization).
                let sector_in_group = if sectors_per_group > 1 {
                    next_bits(&mut state, step_c, sectors_per_group.trailing_zeros())
                } else {
                    _mm256_setzero_si256()
                };
                let sector = _mm256_add_epi32(
                    _mm256_set1_epi32((group * sectors_per_group) as i32),
                    sector_in_group,
                );
                // Build the 64-bit search mask as two 32-bit halves.
                let mut mask_lo = _mm256_setzero_si256();
                let mut mask_hi = _mm256_setzero_si256();
                for _ in 0..bits_per_group {
                    let bit = next_bits(&mut state, step_c, 6);
                    let in_hi = _mm256_cmpgt_epi32(bit, thirty_one);
                    let shifted = _mm256_sllv_epi32(one, _mm256_and_si256(bit, thirty_one));
                    mask_hi = _mm256_or_si256(mask_hi, _mm256_and_si256(shifted, in_hi));
                    mask_lo = _mm256_or_si256(mask_lo, _mm256_andnot_si256(in_hi, shifted));
                }
                // The sector's two 32-bit halves live at word indexes
                // block_word0 + 2*sector and +1 (little-endian u64 storage).
                let word_lo_idx = _mm256_add_epi32(block_word0, _mm256_slli_epi32::<1>(sector));
                let word_hi_idx = _mm256_add_epi32(word_lo_idx, one);
                let lo = _mm256_i32gather_epi32::<4>(base, word_lo_idx);
                let hi = _mm256_i32gather_epi32::<4>(base, word_hi_idx);
                let lo_ok = _mm256_cmpeq_epi32(_mm256_and_si256(lo, mask_lo), mask_lo);
                let hi_ok = _mm256_cmpeq_epi32(_mm256_and_si256(hi, mask_hi), mask_hi);
                all_hit = _mm256_and_si256(all_hit, _mm256_and_si256(lo_ok, hi_ok));
            }

            let lane_mask = _mm256_movemask_ps(_mm256_castsi256_ps(all_hit));
            push_lanes(sel, offset, lane_mask);
        }

        for (i, &key) in keys.iter().enumerate().skip(chunks * 8) {
            sel.push_if(i as u32, filter.contains(key));
        }
    }
}
