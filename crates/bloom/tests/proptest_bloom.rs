//! Property-based tests for the Bloom filter variants.

use pof_bloom::{Addressing, BlockedBloom, BloomConfig, ClassicBloom};
use pof_filter::{Filter, SelectionVector};
use proptest::prelude::*;

/// Strategy over valid blocked-Bloom configurations spanning all variants and
/// both addressing modes.
fn config_strategy() -> impl Strategy<Value = BloomConfig> {
    let addressing = prop_oneof![Just(Addressing::PowerOfTwo), Just(Addressing::Magic)];
    prop_oneof![
        // Register-blocked: B in {32, 64}, k in [1, 12].
        (
            prop_oneof![Just(32u32), Just(64u32)],
            1u32..=12,
            addressing.clone()
        )
            .prop_map(|(b, k, a)| BloomConfig::register_blocked(b, k, a)),
        // Plain blocked: B in {128, 256, 512}, k in [1, 12].
        (
            prop_oneof![Just(128u32), Just(256u32), Just(512u32)],
            1u32..=12,
            addressing.clone()
        )
            .prop_map(|(b, k, a)| BloomConfig::blocked(b, k, a)),
        // Sectorized: B in {128, 256, 512}, S in {32, 64}, k = multiple of B/S.
        (
            prop_oneof![Just(128u32), Just(256u32), Just(512u32)],
            prop_oneof![Just(32u32), Just(64u32)],
            1u32..=2,
            addressing.clone()
        )
            .prop_map(|(b, s, mult, a)| BloomConfig::sectorized(b, s, (b / s) * mult, a))
            .prop_filter("k must stay within the paper's range", |c| c.k <= 16),
        // Cache-sectorized: B = 256/512, S = 64, z in {2, 4}, k = multiple of z.
        (
            prop_oneof![Just(256u32), Just(512u32)],
            prop_oneof![Just(2u32), Just(4u32)],
            1u32..=4,
            addressing
        )
            .prop_map(|(b, z, mult, a)| BloomConfig::cache_sectorized(
                b,
                64,
                z,
                z * mult,
                a
            )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false negatives, for any valid configuration and any key set.
    #[test]
    fn no_false_negatives(
        config in config_strategy(),
        keys in prop::collection::hash_set(any::<u32>(), 1..2_000),
        bits_per_key in 6.0f64..24.0,
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), bits_per_key);
        for &key in &keys {
            prop_assert!(filter.insert(key));
        }
        for &key in &keys {
            prop_assert!(filter.contains(key), "false negative in {}", config.label());
        }
    }

    /// The batched lookup (SIMD when available) must agree bit-for-bit with
    /// the scalar path for every configuration and probe set.
    #[test]
    fn batch_equals_scalar(
        config in config_strategy(),
        keys in prop::collection::vec(any::<u32>(), 1..1_500),
        probes in prop::collection::vec(any::<u32>(), 1..1_500),
    ) {
        let mut filter = BlockedBloom::with_bits_per_key(config, keys.len(), 12.0);
        for &key in &keys {
            filter.insert(key);
        }
        let mut batch = SelectionVector::new();
        filter.contains_batch(&probes, &mut batch);
        let mut scalar = SelectionVector::new();
        filter.contains_batch_scalar(&probes, &mut scalar);
        prop_assert_eq!(
            batch.as_slice(),
            scalar.as_slice(),
            "kernel {} disagrees with scalar for {}",
            filter.kernel_name(),
            config.label()
        );
    }

    /// Inserting more keys never turns a positive into a negative
    /// (monotonicity of the bit array).
    #[test]
    fn inserts_are_monotone(
        config in config_strategy(),
        first in prop::collection::vec(any::<u32>(), 1..500),
        second in prop::collection::vec(any::<u32>(), 1..500),
    ) {
        let mut filter = BlockedBloom::with_bits_per_key(config, first.len() + second.len(), 10.0);
        for &key in &first {
            filter.insert(key);
        }
        let positives_before: Vec<u32> = (0..4_096u32).filter(|k| filter.contains(*k)).collect();
        for &key in &second {
            filter.insert(key);
        }
        for key in positives_before {
            prop_assert!(filter.contains(key));
        }
    }

    /// The classic Bloom filter also never produces false negatives.
    #[test]
    fn classic_no_false_negatives(
        keys in prop::collection::hash_set(any::<u32>(), 1..2_000),
        k in 1u32..=12,
        bits_per_key in 6.0f64..20.0,
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let mut filter = ClassicBloom::with_bits_per_key(keys.len(), bits_per_key, k);
        for &key in &keys {
            filter.insert(key);
        }
        for &key in &keys {
            prop_assert!(filter.contains(key));
        }
    }

    /// Filter size accounting: the actual size honours the addressing mode
    /// (power-of-two rounds up to a power-of-two block count, magic stays
    /// within one percent of the request).
    #[test]
    fn size_accounting(config in config_strategy(), m_bits in 4_096u64..2_000_000) {
        let filter = BlockedBloom::new(config, m_bits);
        let blocks = u64::from(filter.num_blocks());
        prop_assert_eq!(filter.size_bits(), blocks * u64::from(config.block_bits));
        prop_assert!(filter.size_bits() >= m_bits);
        match config.addressing {
            Addressing::PowerOfTwo => prop_assert!(blocks.is_power_of_two()),
            Addressing::Magic => {
                // The block count must be exactly the add-free divisor chosen
                // for the requested block count — no hidden extra rounding.
                let desired_blocks =
                    u32::try_from(m_bits.div_ceil(u64::from(config.block_bits))).unwrap();
                let expected = pof_hash::MagicDivisor::new_at_least(desired_blocks).divisor;
                prop_assert_eq!(filter.num_blocks(), expected);
            }
        }
    }
}

/// On AVX2-capable hosts the SIMD kernels must actually be selected for the
/// configurations they cover (guards against silent scalar fallback).
#[test]
fn simd_kernels_are_selected_on_avx2_hosts() {
    if !std::arch::is_x86_feature_detected!("avx2") {
        eprintln!("skipping: host has no AVX2");
        return;
    }
    let register = BlockedBloom::new(
        BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo),
        1 << 16,
    );
    assert_eq!(register.kernel_name(), "avx2-register32");

    let cache = BlockedBloom::new(
        BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::Magic),
        1 << 20,
    );
    assert_eq!(cache.kernel_name(), "avx2-sector64");

    let sectorized = BlockedBloom::new(
        BloomConfig::sectorized(512, 64, 8, Addressing::PowerOfTwo),
        1 << 20,
    );
    assert_eq!(sectorized.kernel_name(), "avx2-sector64");

    // 64-bit register blocking has no SIMD kernel and must fall back.
    let register64 = BlockedBloom::new(
        BloomConfig::register_blocked(64, 4, Addressing::PowerOfTwo),
        1 << 16,
    );
    assert_eq!(register64.kernel_name(), "scalar");
}
