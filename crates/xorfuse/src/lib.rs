//! Immutable Xor / binary-fuse filters — the third filter family.
//!
//! "Xor Filters: Faster and Smaller Than Bloom and Cuckoo Filters" (Graf &
//! Lemire) shows that for *static* key sets, a filter that is constructed
//! once from the complete set and never mutated can undercut both Bloom and
//! Cuckoo on space while answering lookups from a fixed number of probes.
//! The binary fuse variant implemented here reaches ~9.1 bits per key at an
//! ~0.39 % false-positive rate ([`Fuse8`]) and ~18.2 bits per key at ~0.0015 %
//! ([`Fuse16`]) — below the information-theoretic budget any Bloom filter
//! needs for the same rate.
//!
//! That space win is bought with a hard constraint: **the structure is
//! immutable**. Every slot stores an XOR-share of the fingerprints of the
//! (up to three) keys hashing to it, so flipping any single entry corrupts
//! membership answers for other keys. Inserts and deletes therefore return
//! an explicit [`FuseMutation`] outcome instead of mutating, and callers
//! (the sharded store's rebuild machinery) route every mutation through a
//! whole-set reconstruction.
//!
//! # Layout and construction
//!
//! A filter over `n` keys is an array of `~1.125·n` fingerprints split into
//! `segment_count + 2` segments of a power-of-two `segment_length`. Each key
//! hashes to three slots in three *consecutive* segments (the "fuse" layout,
//! which keeps all three probes within a bounded window and makes peeling
//! succeed at much higher load factors than plain Xor filters):
//!
//! ```text
//! h  = mix64(key + seed)
//! h0 = mulhi(h, segment_count·L)            // start window
//! h1 = (h0 + L) ^ (bits 18..18+log2(L) of h)   // next aligned window
//! h2 = (h1 + L) ^ (bits  0..log2(L)     of h)  // window after that
//! ```
//!
//! Construction peels the 3-uniform hypergraph: repeatedly find a slot
//! referenced by exactly one key, remember `(key-hash, slot)`, remove the
//! key, and afterwards assign fingerprints in reverse peel order so that
//! `fp(h) == F[h0] ^ F[h1] ^ F[h2]` holds for every key. Peeling can fail on
//! hash-cycle collisions; the builder then retries with a fresh seed
//! (recorded in [`BinaryFuse::construction_retries`] — the advisor's
//! build-cost term and the store's stats both surface it).
//!
//! # Quick start
//!
//! ```
//! use pof_xorfuse::{Fuse8, FuseMutation};
//! use pof_filter::Filter;
//!
//! let keys: Vec<u32> = (0..10_000).map(|i| i * 7 + 1).collect();
//! let mut filter = Fuse8::from_keys(&keys);
//! assert!(keys.iter().all(|&k| filter.contains(k)));
//! // Mutations are refused with an explicit outcome, never applied:
//! assert_eq!(filter.try_insert(4_000_000_000), Err(FuseMutation::Immutable));
//! assert!(filter.size_bits() < 11 * keys.len() as u64);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use pof_filter::probe::{self, prefetch_read, ProbePlan};
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_hash::mix64;

/// Why an in-place mutation attempt on a fuse filter was refused.
///
/// A binary fuse filter never applies mutations; the outcome tells the
/// caller *what to do about it*:
///
/// * [`FuseMutation::Immutable`] — the mutation is meaningful but needs a
///   whole-set rebuild (inserting a new key, or deleting a key the filter
///   answers positive for). Stores route these through their
///   snapshot→build→swap machinery.
/// * [`FuseMutation::Unsupported`] — the mutation cannot have any effect
///   even after a rebuild (deleting a key the filter already answers
///   negative for: with no false negatives, a negative answer proves the
///   key was never built in). Callers must **not** tombstone or trigger a
///   rebuild on this outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuseMutation {
    /// The structure is immutable: apply the mutation by rebuilding from
    /// the authoritative key set.
    Immutable,
    /// The mutation is a provable no-op (absent-key delete); nothing to
    /// rebuild, nothing to tombstone.
    Unsupported,
}

/// Configuration of a binary fuse filter: the fingerprint width.
///
/// Mirrors `BloomConfig` / `CuckooConfig` as the piece carried through
/// `FilterConfig` grids: the only tunable is the per-slot fingerprint width,
/// which fixes the false-positive rate at `2^-bits` and the space at
/// `bits × array_length / n ≈ 1.125 × bits` per key for large sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuseConfig {
    fingerprint_bits: u32,
}

impl FuseConfig {
    /// A fuse filter with `bits`-wide fingerprints. Only 8 and 16 are
    /// supported (the two widths with a native lane type).
    ///
    /// # Panics
    /// If `bits` is not 8 or 16.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(
            bits == 8 || bits == 16,
            "fuse fingerprints must be 8 or 16 bits, got {bits}"
        );
        Self {
            fingerprint_bits: bits,
        }
    }

    /// The 8-bit variant: ~9.1 bits/key at a ~0.39 % false-positive rate.
    #[must_use]
    pub fn fuse8() -> Self {
        Self::new(8)
    }

    /// The 16-bit variant: ~18.2 bits/key at a ~0.0015 % rate.
    #[must_use]
    pub fn fuse16() -> Self {
        Self::new(16)
    }

    /// Fingerprint width in bits (8 or 16).
    #[must_use]
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }

    /// Analytical false-positive rate: a probe of a non-member matches only
    /// when the XOR of three effectively random fingerprints equals its own,
    /// i.e. `2^-bits` — independent of occupancy (the set is fixed at build).
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        (-f64::from(self.fingerprint_bits)).exp2()
    }

    /// The space a filter built over `n` distinct keys actually occupies, in
    /// bits per key — the structural floor a `bits_per_key` budget must
    /// clear for this configuration to be feasible. Exact: derived from the
    /// same segment arithmetic the constructor uses (the array overhead
    /// shrinks toward ~1.125× as `n` grows but is larger for small sets).
    #[must_use]
    pub fn structural_bits_per_key(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let size = u32::try_from(n).unwrap_or(u32::MAX);
        let layout = FuseLayout::for_size(size);
        f64::from(self.fingerprint_bits) * f64::from(layout.array_length) / n as f64
    }

    /// Short label for figures and stats, e.g. `"fuse8"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("fuse{}", self.fingerprint_bits)
    }
}

/// Fingerprint lane: the per-slot storage type. Sealed — the two widths with
/// native lane types ([`u8`], [`u16`]) are the only implementations.
pub trait Fingerprint:
    Copy + Default + PartialEq + std::ops::BitXor<Output = Self> + private::Sealed
{
    /// Width of the lane in bits.
    const BITS: u32;
    /// Truncate a mixed 64-bit fingerprint hash into this lane.
    fn from_hash(hash: u64) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
}

impl Fingerprint for u8 {
    const BITS: u32 = 8;
    #[inline]
    fn from_hash(hash: u64) -> Self {
        hash as u8
    }
}

impl Fingerprint for u16 {
    const BITS: u32 = 16;
    #[inline]
    fn from_hash(hash: u64) -> Self {
        hash as u16
    }
}

/// The 3-wise segment geometry, derived from the distinct-key count with the
/// canonical binary-fuse arithmetic (arity 3).
#[derive(Debug, Clone, Copy)]
struct FuseLayout {
    segment_length: u32,
    segment_length_mask: u32,
    segment_count_length: u32,
    array_length: u32,
}

impl FuseLayout {
    fn for_size(size: u32) -> Self {
        if size == 0 {
            // Degenerate: an empty filter stores nothing and short-circuits
            // every probe; the geometry is never consulted.
            return Self {
                segment_length: 4,
                segment_length_mask: 3,
                segment_count_length: 4,
                array_length: 0,
            };
        }
        // segment_length = 2^floor(log(n)/log(3.33) + 2.25), capped at 2^18.
        let exponent = (f64::from(size).ln() / 3.33f64.ln() + 2.25).floor() as u32;
        let segment_length = (1u32 << exponent.min(18)).min(262_144);
        // capacity = n × max(1.125, 0.875 + 0.25·ln(10^6)/ln(n)): the load
        // slack peeling needs, larger for small sets.
        let size_factor = if size <= 1 {
            1.0
        } else {
            (0.875 + 0.25 * 1_000_000f64.ln() / f64::from(size).ln()).max(1.125)
        };
        let capacity = (f64::from(size) * size_factor).round() as u64;
        let segment_length64 = u64::from(segment_length);
        let init_segment_count = capacity.div_ceil(segment_length64).saturating_sub(2).max(1);
        let array_length = (init_segment_count + 2) * segment_length64;
        let mut segment_count = array_length.div_ceil(segment_length64);
        segment_count = if segment_count <= 2 {
            1
        } else {
            segment_count - 2
        };
        let array_length = (segment_count + 2) * segment_length64;
        assert!(
            array_length <= u64::from(u32::MAX),
            "fuse filter over {size} keys exceeds the 32-bit slot-index space"
        );
        Self {
            segment_length,
            segment_length_mask: segment_length - 1,
            segment_count_length: (segment_count * segment_length64) as u32,
            array_length: array_length as u32,
        }
    }

    /// The three probe slots of `hash`: three consecutive aligned
    /// `segment_length` windows, so the slots are always distinct and
    /// `h2 < (segment_count + 2) · segment_length = array_length`.
    #[inline]
    fn positions(&self, hash: u64) -> [u32; 3] {
        let hi = ((u128::from(hash) * u128::from(self.segment_count_length)) >> 64) as u32;
        let h0 = hi;
        let mut h1 = h0 + self.segment_length;
        let mut h2 = h1 + self.segment_length;
        h1 ^= ((hash >> 18) as u32) & self.segment_length_mask;
        h2 ^= (hash as u32) & self.segment_length_mask;
        [h0, h1, h2]
    }
}

/// Per-key 64-bit hash: `mix64` is a bijective finalizer, so two distinct
/// `u32` keys can never collide to one hash under any seed — peeling fails
/// only on genuine hypergraph cycles, which a reseed resolves.
#[inline]
fn key_hash(key: u32, seed: u64) -> u64 {
    mix64(u64::from(key).wrapping_add(seed))
}

#[inline]
fn fingerprint_hash(hash: u64) -> u64 {
    hash ^ (hash >> 32)
}

/// Deterministic seed schedule: attempt `i` always probes the same seed, so
/// identical key sets build identical filters (snapshot comparisons and the
/// oracle tests rely on reproducibility).
#[inline]
fn seed_for_attempt(attempt: u32) -> u64 {
    mix64((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Seeds tried before giving up. Peel failure probability per attempt is a
/// small constant for the canonical size factor, so 64 consecutive failures
/// indicate a broken hash, not bad luck.
const MAX_CONSTRUCTION_ATTEMPTS: u32 = 64;

/// An immutable binary fuse filter with `F`-wide fingerprint slots,
/// constructed from a complete key set. See the [crate docs](crate) for the
/// layout; use the [`Fuse8`] / [`Fuse16`] aliases.
#[derive(Debug, Clone)]
pub struct BinaryFuse<F> {
    layout: FuseLayout,
    seed: u64,
    fingerprints: Box<[F]>,
    keys: usize,
    retries: u32,
    /// Whether the staged (hash → prefetch → probe) kernel may serve large
    /// batches; cleared by [`Self::force_scalar`].
    staged_enabled: bool,
}

/// Binary fuse filter with 8-bit fingerprints: ~9.1 bits/key, FPR ~2⁻⁸.
pub type Fuse8 = BinaryFuse<u8>;

/// Binary fuse filter with 16-bit fingerprints: ~18.2 bits/key, FPR ~2⁻¹⁶.
pub type Fuse16 = BinaryFuse<u16>;

impl<F: Fingerprint> BinaryFuse<F> {
    /// Build from a key set. Duplicates are welcome (the builder dedups);
    /// the filter represents the distinct keys exactly.
    ///
    /// # Panics
    /// If construction fails `MAX_CONSTRUCTION_ATTEMPTS` times in a row,
    /// which for the canonical layout parameters indicates a broken
    /// environment rather than bad luck.
    #[must_use]
    pub fn from_keys(keys: &[u32]) -> Self {
        let mut distinct = keys.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        Self::from_distinct(&distinct)
    }

    /// Build from keys that are already distinct (sortedness not required).
    /// The fast path for callers that maintain an authoritative deduplicated
    /// key set, like the sharded store's `CompactKeySet`.
    #[must_use]
    pub fn from_distinct(keys: &[u32]) -> Self {
        let size = u32::try_from(keys.len()).expect("fuse filters hold at most 2^32 keys");
        let layout = FuseLayout::for_size(size);
        if size == 0 {
            return Self {
                layout,
                seed: seed_for_attempt(0),
                fingerprints: Box::new([]),
                keys: 0,
                retries: 0,
                staged_enabled: true,
            };
        }
        for attempt in 0..MAX_CONSTRUCTION_ATTEMPTS {
            let seed = seed_for_attempt(attempt);
            if let Some(fingerprints) = try_build::<F>(keys, &layout, seed) {
                return Self {
                    layout,
                    seed,
                    fingerprints,
                    keys: keys.len(),
                    retries: attempt,
                    staged_enabled: true,
                };
            }
        }
        unreachable!("binary fuse construction failed {MAX_CONSTRUCTION_ATTEMPTS} seeds in a row")
    }

    /// Membership probe: three XORed fingerprint loads.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: u32) -> bool {
        if self.keys == 0 {
            return false;
        }
        let hash = key_hash(key, self.seed);
        let expected = F::from_hash(fingerprint_hash(hash));
        let [h0, h1, h2] = self.layout.positions(hash);
        let folded = self.fingerprints[h0 as usize]
            ^ self.fingerprints[h1 as usize]
            ^ self.fingerprints[h2 as usize];
        folded == expected
    }

    /// Attempt an in-place insert. Never mutates: returns `Ok(())` only when
    /// the key already tests positive (a no-op), otherwise
    /// `Err(`[`FuseMutation::Immutable`]`)` — rebuild from the full key set
    /// to apply it.
    pub fn try_insert(&mut self, key: u32) -> Result<(), FuseMutation> {
        if self.contains(key) {
            Ok(())
        } else {
            Err(FuseMutation::Immutable)
        }
    }

    /// Attempt an in-place delete. Never mutates: a key that tests positive
    /// yields `Err(`[`FuseMutation::Immutable`]`)` (removing it requires a
    /// rebuild), a key that tests negative yields
    /// `Err(`[`FuseMutation::Unsupported`]`)` — no false negatives means the
    /// key was provably never built in, so there is nothing a rebuild would
    /// change and callers must not tombstone or rebuild.
    pub fn try_remove(&mut self, key: u32) -> Result<(), FuseMutation> {
        if self.contains(key) {
            Err(FuseMutation::Immutable)
        } else {
            Err(FuseMutation::Unsupported)
        }
    }

    /// Distinct keys the filter was built over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True if built over the empty key set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Seeds burned on failed peeling attempts before this filter built
    /// (0 in the overwhelmingly common case).
    #[must_use]
    pub fn construction_retries(&self) -> u32 {
        self.retries
    }

    /// Fingerprint width in bits.
    #[must_use]
    pub fn fingerprint_bits(&self) -> u32 {
        F::BITS
    }

    /// The filter's configuration.
    #[must_use]
    pub fn fuse_config(&self) -> FuseConfig {
        FuseConfig::new(F::BITS)
    }

    /// Borrow the raw fingerprint array for snapshot serialization: for an
    /// immutable fuse filter this is the entire probe-side state.
    #[must_use]
    pub fn snapshot_fingerprints(&self) -> &[F] {
        &self.fingerprints
    }

    /// Export the scalar state a snapshot carries alongside the fingerprint
    /// array: `(seed, distinct key count, construction retries)`.
    #[must_use]
    pub fn snapshot_parts(&self) -> (u64, usize, u32) {
        (self.seed, self.keys, self.retries)
    }

    /// Rebuild a filter from persisted raw parts. The segment geometry is
    /// fully derivable from the distinct-key count, so the snapshot only
    /// carries `(seed, keys, retries, fingerprints)`; fails when the
    /// fingerprint array does not match the re-derived layout.
    pub fn restore(
        seed: u64,
        keys: usize,
        retries: u32,
        fingerprints: Box<[F]>,
    ) -> Result<Self, &'static str> {
        let size = u32::try_from(keys).map_err(|_| "fuse filters hold at most 2^32 keys")?;
        let layout = FuseLayout::for_size(size);
        if fingerprints.len() != layout.array_length as usize {
            return Err("fingerprint array length does not match the derived layout");
        }
        Ok(Self {
            layout,
            seed,
            fingerprints,
            keys,
            retries,
            staged_enabled: true,
        })
    }

    /// Scalar batched lookup (reference path for the staged kernel).
    // pof-analyze: no-alloc
    pub fn contains_batch_scalar(&self, keys: &[u32], sel: &mut SelectionVector) {
        if self.keys == 0 {
            return;
        }
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, self.contains(key));
        }
    }

    /// Disable the automatic staged-kernel routing, so
    /// [`Filter::contains_batch`] really runs the scalar loop (for
    /// staged-vs-scalar comparisons; the explicit
    /// [`Self::contains_batch_staged`] entry point stays available).
    pub fn force_scalar(&mut self) {
        self.staged_enabled = false;
    }

    /// Prefetch the first cache lines of the fingerprint array. Used by the
    /// sharded store to stream the *next* shard's filter in while the
    /// current shard's slice is being probed.
    #[inline]
    pub fn prefetch_storage(&self) {
        probe::prefetch_lines(&self.fingerprints);
    }

    /// Staged (hash → prefetch → probe) batched lookup through a
    /// caller-owned [`ProbePlan`]: all three segment slots for a chunk of
    /// `plan.distance()` keys are hashed and prefetched while the previous
    /// chunk's slots are XOR-folded, hiding the three per-key miss latencies
    /// that dominate once the fingerprint array outgrows the cache.
    /// Selections are bit-for-bit identical to
    /// [`Self::contains_batch_scalar`]. [`Filter::contains_batch`] routes
    /// here automatically for large batches against large filters.
    // pof-analyze: no-alloc
    pub fn contains_batch_staged(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        if self.keys == 0 || keys.is_empty() {
            return;
        }
        let distance = plan.distance();
        let fingerprints = &self.fingerprints;
        let layout = self.layout;
        let seed = self.seed;
        let [packed, seconds, thirds] = plan.lanes(2 * distance);
        // Hash + prefetch one chunk. The first lane packs the first slot
        // index (low half) with the key's fingerprint hash (high half) so
        // the probe stage re-derives nothing.
        let hash_and_prefetch =
            |chunk: &[u32], packed: &mut [u64], seconds: &mut [u64], thirds: &mut [u64]| {
                for (i, &key) in chunk.iter().enumerate() {
                    let hash = key_hash(key, seed);
                    let [h0, h1, h2] = layout.positions(hash);
                    packed[i] = u64::from(h0) | (fingerprint_hash(hash) << 32);
                    seconds[i] = u64::from(h1);
                    thirds[i] = u64::from(h2);
                    prefetch_read(&fingerprints[h0 as usize]);
                    prefetch_read(&fingerprints[h1 as usize]);
                    prefetch_read(&fingerprints[h2 as usize]);
                }
            };
        sel.reserve(keys.len());
        let first = distance.min(keys.len());
        hash_and_prefetch(
            &keys[..first],
            &mut packed[..first],
            &mut seconds[..first],
            &mut thirds[..first],
        );
        let mut begin = 0usize;
        let mut half = 0usize; // chunk c's addresses live at lane[half · distance ..]
        while begin < keys.len() {
            let end = (begin + distance).min(keys.len());
            // Stage the next chunk into the other lane halves before
            // probing this one, so its slots stream in underneath the folds.
            if end < keys.len() {
                let next_end = (end + distance).min(keys.len());
                let other = (1 - half) * distance;
                let len = next_end - end;
                hash_and_prefetch(
                    &keys[end..next_end],
                    &mut packed[other..other + len],
                    &mut seconds[other..other + len],
                    &mut thirds[other..other + len],
                );
            }
            let base = half * distance;
            for i in 0..(end - begin) {
                let entry = packed[base + i];
                // `from_hash` truncates, so the 32 packed bits reproduce the
                // expected fingerprint exactly (F is at most 16 bits wide).
                let expected = F::from_hash(entry >> 32);
                let folded = fingerprints[(entry as u32) as usize]
                    ^ fingerprints[seconds[base + i] as usize]
                    ^ fingerprints[thirds[base + i] as usize];
                sel.push_if((begin + i) as u32, folded == expected);
            }
            begin = end;
            half = 1 - half;
        }
    }
}

/// One seeded peeling attempt: returns the assigned fingerprint array, or
/// `None` when the 3-uniform hypergraph for this seed has a 2-core (a cycle
/// peeling cannot remove).
fn try_build<F: Fingerprint>(keys: &[u32], layout: &FuseLayout, seed: u64) -> Option<Box<[F]>> {
    let slots = layout.array_length as usize;
    // Per-slot degree and XOR-accumulated key hashes: a slot of degree 1
    // holds exactly its single key's hash in the accumulator.
    let mut degree = vec![0u32; slots];
    let mut acc = vec![0u64; slots];
    for &key in keys {
        let hash = key_hash(key, seed);
        for position in layout.positions(hash) {
            degree[position as usize] += 1;
            acc[position as usize] ^= hash;
        }
    }
    let mut queue: Vec<u32> = (0..slots as u32)
        .filter(|&slot| degree[slot as usize] == 1)
        .collect();
    let mut stack: Vec<(u64, u32)> = Vec::with_capacity(keys.len());
    while let Some(slot) = queue.pop() {
        if degree[slot as usize] != 1 {
            continue; // the slot's last key was peeled through another slot
        }
        let hash = acc[slot as usize];
        stack.push((hash, slot));
        for position in layout.positions(hash) {
            let p = position as usize;
            degree[p] -= 1;
            acc[p] ^= hash;
            if degree[p] == 1 {
                queue.push(position);
            }
        }
    }
    if stack.len() != keys.len() {
        return None;
    }
    // Reverse peel order: each key's free slot is assigned so the 3-way XOR
    // equals its fingerprint; earlier-peeled keys never see their slots
    // change afterwards.
    let mut fingerprints = vec![F::default(); slots];
    for &(hash, slot) in stack.iter().rev() {
        let [h0, h1, h2] = layout.positions(hash);
        let folded =
            fingerprints[h0 as usize] ^ fingerprints[h1 as usize] ^ fingerprints[h2 as usize];
        fingerprints[slot as usize] = F::from_hash(fingerprint_hash(hash)) ^ folded;
    }
    Some(fingerprints.into_boxed_slice())
}

impl<F: Fingerprint> Filter for BinaryFuse<F> {
    /// Immutable: returns `true` only if the key already tests positive
    /// (a no-op insert), `false` otherwise — the caller must rebuild. The
    /// no-false-negatives contract is preserved: `insert → true` implies
    /// `contains → true`.
    fn insert(&mut self, key: u32) -> bool {
        self.contains(key)
    }

    fn contains(&self, key: u32) -> bool {
        BinaryFuse::contains(self, key)
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        if self.keys == 0 {
            return;
        }
        // Large batches only go staged past the *fuse-specific* footprint
        // floor: the three probe loads land in adjacent segment windows, so
        // scalar wins at footprints where Bloom/Cuckoo already benefit from
        // staging (the recorded fuse8 staged/scalar ratios sat at 0.66–0.81×
        // under the generic floor).
        if self.staged_enabled
            && probe::staged_worthwhile_for(FilterKind::Fuse, keys.len(), self.size_bits() / 8)
        {
            probe::with_thread_plan(|plan| self.contains_batch_staged(keys, sel, plan));
            return;
        }
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, BinaryFuse::contains(self, key));
        }
    }

    /// [`DeleteOutcome::Unsupported`] for keys that test positive (removal
    /// needs a rebuild — the store tombstones and purges), and
    /// [`DeleteOutcome::NotFound`] for keys that test negative (provably
    /// never built in: no tombstone, no rebuild).
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        if BinaryFuse::contains(self, key) {
            DeleteOutcome::Unsupported
        } else {
            DeleteOutcome::NotFound
        }
    }

    fn size_bits(&self) -> u64 {
        self.fingerprints.len() as u64 * u64::from(F::BITS)
    }

    fn kind(&self) -> FilterKind {
        FilterKind::Fuse
    }

    fn config_label(&self) -> String {
        self.fuse_config().label()
    }
}

/// A fuse filter of either fingerprint width behind one concrete type — the
/// form `AnyFilter` carries, mirroring how the Bloom variants collapse into
/// one enum arm.
#[derive(Debug, Clone)]
pub enum FuseFilter {
    /// 8-bit fingerprints.
    Fp8(Fuse8),
    /// 16-bit fingerprints.
    Fp16(Fuse16),
}

impl FuseFilter {
    /// Build a filter of the configured width over `keys` (dedup included).
    #[must_use]
    pub fn build(config: FuseConfig, keys: &[u32]) -> Self {
        match config.fingerprint_bits() {
            8 => Self::Fp8(Fuse8::from_keys(keys)),
            _ => Self::Fp16(Fuse16::from_keys(keys)),
        }
    }

    /// The filter's configuration.
    #[must_use]
    pub fn fuse_config(&self) -> FuseConfig {
        match self {
            Self::Fp8(f) => f.fuse_config(),
            Self::Fp16(f) => f.fuse_config(),
        }
    }

    /// Distinct keys the filter was built over.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Fp8(f) => f.len(),
            Self::Fp16(f) => f.len(),
        }
    }

    /// True if built over the empty key set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seeds burned on failed peeling attempts before this filter built.
    #[must_use]
    pub fn construction_retries(&self) -> u32 {
        match self {
            Self::Fp8(f) => f.construction_retries(),
            Self::Fp16(f) => f.construction_retries(),
        }
    }

    /// Fingerprint width in bits (8 or 16).
    #[must_use]
    pub fn fingerprint_bits(&self) -> u32 {
        match self {
            Self::Fp8(f) => f.fingerprint_bits(),
            Self::Fp16(f) => f.fingerprint_bits(),
        }
    }

    /// See [`BinaryFuse::contains_batch_scalar`].
    // pof-analyze: no-alloc
    pub fn contains_batch_scalar(&self, keys: &[u32], sel: &mut SelectionVector) {
        match self {
            Self::Fp8(f) => f.contains_batch_scalar(keys, sel),
            Self::Fp16(f) => f.contains_batch_scalar(keys, sel),
        }
    }

    /// See [`BinaryFuse::contains_batch_staged`].
    // pof-analyze: no-alloc
    pub fn contains_batch_staged(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        match self {
            Self::Fp8(f) => f.contains_batch_staged(keys, sel, plan),
            Self::Fp16(f) => f.contains_batch_staged(keys, sel, plan),
        }
    }

    /// See [`BinaryFuse::force_scalar`].
    pub fn force_scalar(&mut self) {
        match self {
            Self::Fp8(f) => f.force_scalar(),
            Self::Fp16(f) => f.force_scalar(),
        }
    }

    /// See [`BinaryFuse::prefetch_storage`].
    #[inline]
    pub fn prefetch_storage(&self) {
        match self {
            Self::Fp8(f) => f.prefetch_storage(),
            Self::Fp16(f) => f.prefetch_storage(),
        }
    }

    /// See [`BinaryFuse::try_insert`].
    pub fn try_insert(&mut self, key: u32) -> Result<(), FuseMutation> {
        match self {
            Self::Fp8(f) => f.try_insert(key),
            Self::Fp16(f) => f.try_insert(key),
        }
    }

    /// See [`BinaryFuse::try_remove`].
    pub fn try_remove(&mut self, key: u32) -> Result<(), FuseMutation> {
        match self {
            Self::Fp8(f) => f.try_remove(key),
            Self::Fp16(f) => f.try_remove(key),
        }
    }
}

impl Filter for FuseFilter {
    fn insert(&mut self, key: u32) -> bool {
        match self {
            Self::Fp8(f) => f.insert(key),
            Self::Fp16(f) => f.insert(key),
        }
    }

    fn contains(&self, key: u32) -> bool {
        match self {
            Self::Fp8(f) => f.contains(key),
            Self::Fp16(f) => f.contains(key),
        }
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        match self {
            Self::Fp8(f) => f.contains_batch(keys, sel),
            Self::Fp16(f) => f.contains_batch(keys, sel),
        }
    }

    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        match self {
            Self::Fp8(f) => f.try_delete(key),
            Self::Fp16(f) => f.try_delete(key),
        }
    }

    fn size_bits(&self) -> u64 {
        match self {
            Self::Fp8(f) => f.size_bits(),
            Self::Fp16(f) => f.size_bits(),
        }
    }

    fn kind(&self) -> FilterKind {
        FilterKind::Fuse
    }

    fn config_label(&self) -> String {
        self.fuse_config().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn distinct_keys(n: usize, seed: u64) -> Vec<u32> {
        // A full-period LCG walk over u32 gives distinct keys cheaply.
        let mut state = seed as u32 | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(747_796_405).wrapping_add(2_891_336_453);
                state
            })
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    #[test]
    fn no_false_negatives_and_bounded_fpr() {
        let keys = distinct_keys(20_000, 0xF00D);
        let fuse8 = Fuse8::from_keys(&keys);
        let fuse16 = Fuse16::from_keys(&keys);
        for &key in &keys {
            assert!(fuse8.contains(key), "fuse8 false negative {key}");
            assert!(fuse16.contains(key), "fuse16 false negative {key}");
        }
        let members: std::collections::HashSet<u32> = keys.iter().copied().collect();
        let probes = 200_000u32;
        let mut fp8 = 0u32;
        let mut fp16 = 0u32;
        for probe in 0..probes {
            if members.contains(&probe) {
                continue;
            }
            fp8 += u32::from(fuse8.contains(probe));
            fp16 += u32::from(fuse16.contains(probe));
        }
        let rate8 = f64::from(fp8) / f64::from(probes);
        let rate16 = f64::from(fp16) / f64::from(probes);
        assert!(rate8 < 0.008, "fuse8 fpr {rate8}"); // budget 2^-8 ≈ 0.0039
        assert!(rate16 < 0.0005, "fuse16 fpr {rate16}"); // budget 2^-16
    }

    #[test]
    fn space_beats_the_mutable_families() {
        let keys = distinct_keys(100_000, 0xCAFE);
        let fuse8 = Fuse8::from_keys(&keys);
        let bits_per_key = fuse8.size_bits() as f64 / keys.len() as f64;
        // ~9.1 structural; any Bloom filter needs ~1.44·log2(1/f) ≈ 11.5 bits
        // for the same 2^-8 rate.
        assert!(bits_per_key < 10.5, "fuse8 at {bits_per_key} bits/key");
        let fuse16 = Fuse16::from_keys(&keys);
        let bits16 = fuse16.size_bits() as f64 / keys.len() as f64;
        assert!(bits16 < 21.0, "fuse16 at {bits16} bits/key");
        assert_eq!(
            FuseConfig::fuse8().structural_bits_per_key(keys.len() as u64),
            fuse8.size_bits() as f64 / keys.len() as f64,
            "structural estimate must match the real layout"
        );
    }

    #[test]
    fn tiny_and_empty_sets() {
        let empty = Fuse8::from_keys(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.size_bits(), 0);
        assert!(!empty.contains(0));
        assert!(!empty.contains(u32::MAX));

        for n in 1..=8usize {
            let keys: Vec<u32> = (0..n as u32).map(|i| i * 0x1000_0001).collect();
            let filter = Fuse8::from_keys(&keys);
            assert_eq!(filter.len(), n);
            for &key in &keys {
                assert!(filter.contains(key), "n={n} lost {key}");
            }
        }
    }

    #[test]
    fn duplicates_are_deduplicated() {
        let filter = Fuse16::from_keys(&[7, 7, 7, 9, 9, 11]);
        assert_eq!(filter.len(), 3);
        assert!(filter.contains(7) && filter.contains(9) && filter.contains(11));
    }

    #[test]
    fn construction_is_deterministic() {
        let keys = distinct_keys(5_000, 0xDEED);
        let a = Fuse8::from_keys(&keys);
        let b = Fuse8::from_keys(&keys);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.construction_retries(), b.construction_retries());
    }

    #[test]
    fn mutations_return_explicit_outcomes() {
        let keys = distinct_keys(1_000, 0xBEEF);
        let mut filter = FuseFilter::build(FuseConfig::fuse8(), &keys);
        // Insert of a member: no-op success. Insert of a non-member that
        // tests negative: immutable.
        assert_eq!(filter.try_insert(keys[0]), Ok(()));
        let absent = (0..u32::MAX)
            .find(|k| !filter.contains(*k))
            .expect("some key tests negative");
        assert_eq!(filter.try_insert(absent), Err(FuseMutation::Immutable));
        // Delete of a member: immutable (rebuild to remove). Delete of a
        // provably-absent key: unsupported no-op.
        assert_eq!(filter.try_remove(keys[0]), Err(FuseMutation::Immutable));
        assert_eq!(filter.try_remove(absent), Err(FuseMutation::Unsupported));
        // And the Filter-trait mapping the store consumes:
        assert_eq!(filter.try_delete(keys[0]), DeleteOutcome::Unsupported);
        assert_eq!(filter.try_delete(absent), DeleteOutcome::NotFound);
        assert!(!filter.supports_delete());
        assert!(filter.insert(keys[0]));
        assert!(!filter.insert(absent));
    }

    #[test]
    fn filter_trait_surface() {
        let keys = distinct_keys(4_096, 0xA11CE);
        let filter = FuseFilter::build(FuseConfig::fuse16(), &keys);
        assert_eq!(filter.kind(), FilterKind::Fuse);
        assert_eq!(filter.config_label(), "fuse16");
        assert_eq!(filter.fingerprint_bits(), 16);
        let mut sel = SelectionVector::new();
        filter.contains_batch(&keys, &mut sel);
        assert_eq!(sel.len(), keys.len(), "batch path lost a member");
    }

    proptest! {
        #[test]
        fn batch_equals_point_probes(
            keys in prop::collection::hash_set(any::<u32>(), 0..500),
            probes in prop::collection::vec(any::<u32>(), 0..300),
        ) {
            let keys: Vec<u32> = keys.into_iter().collect();
            let filter = Fuse8::from_keys(&keys);
            for &key in &keys {
                prop_assert!(filter.contains(key));
            }
            let mut sel = SelectionVector::new();
            filter.contains_batch(&probes, &mut sel);
            let batch_hits: Vec<u32> = sel.as_slice().to_vec();
            let point_hits: Vec<u32> = probes
                .iter()
                .enumerate()
                .filter(|(_, &k)| filter.contains(k))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(batch_hits, point_hits);
        }
    }
}
