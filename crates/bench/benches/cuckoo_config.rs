//! Figure 8/13 ablation — Cuckoo filter lookup cost across signature lengths
//! and bucket sizes (the precision/space side is covered analytically by the
//! figures harness; this bench measures the throughput side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_cuckoo::{CuckooAddressing, CuckooConfig, CuckooFilter};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn bench_cuckoo_config(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cuckoo_config");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let n = 100_000;
    let mut gen = KeyGen::new(8);
    let keys = gen.distinct_keys(n);
    let probes = gen.keys(16 * 1024);
    for (l, b) in [(8u32, 4u32), (12, 4), (16, 2), (16, 4), (32, 1)] {
        let config = CuckooConfig::new(l, b, CuckooAddressing::PowerOfTwo);
        let mut filter = CuckooFilter::for_keys(config, n);
        for &key in &keys {
            filter.insert(key);
        }
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("lookup", format!("l={l},b={b}")),
            &probes,
            |bench, probes| {
                let mut sel = SelectionVector::with_capacity(probes.len());
                bench.iter(|| {
                    sel.clear();
                    filter.contains_batch(probes, &mut sel);
                    sel.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cuckoo_config);
criterion_main!(benches);
