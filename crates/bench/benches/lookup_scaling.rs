//! Figure 14 — lookup cost versus filter size for the three representative
//! filters (register-blocked Bloom, cache-sectorized Bloom, Cuckoo).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{AnyFilter, FilterConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn build(config: &FilterConfig, filter_bits: u64) -> (AnyFilter, Vec<u32>) {
    let n = (filter_bits as usize / 12).max(64);
    let mut gen = KeyGen::new(7);
    let keys = gen.distinct_keys(n);
    let mut filter = AnyFilter::build(config, n, 12.0);
    for &key in &keys {
        filter.insert(key);
    }
    (filter, gen.keys(16 * 1024))
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let configs: Vec<(&str, FilterConfig)> = vec![
        (
            "register-blocked(B=32,k=4)",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        ),
        (
            "cache-sectorized(B=512,k=8,z=2)",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
        ),
        (
            "cuckoo(l=16,b=2)",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ];
    let mut group = c.benchmark_group("fig14_lookup_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // 16 KiB (L1), 1 MiB (L2/L3) and 16 MiB (beyond L3 on most hosts); larger
    // DRAM-resident sizes are covered by the `figures -- fig14` harness.
    for kib in [16u64, 1024, 16 * 1024] {
        for (name, config) in &configs {
            let (filter, probes) = build(config, kib * 8 * 1024);
            group.throughput(Throughput::Elements(probes.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(*name, format!("{kib}KiB")),
                &probes,
                |b, probes| {
                    let mut sel = SelectionVector::with_capacity(probes.len());
                    b.iter(|| {
                        sel.clear();
                        filter.contains_batch(probes, &mut sel);
                        sel.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookup_scaling);
criterion_main!(benches);
