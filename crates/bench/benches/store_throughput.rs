//! Multi-threaded lookup throughput of the sharded filter store: shard count
//! x thread count x filter family — plus a mixed insert/delete/lookup
//! lifecycle workload sweeping the three rebuild policies.
//!
//! The serving-layer claim behind `pof-store`: batched lookups against
//! snapshot-isolated shards scale with reader threads (lookups are wait-free
//! against writers and share no mutable state), so aggregate throughput at T
//! threads approaches T times the single-thread rate on hosts with T cores.
//! The lifecycle sweep quantifies the policy trade-off: inline doubling pays
//! for rebuilds on the write path, FPR drift amortizes them against the
//! budget, deferred batching moves them into `maintain()` entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{
    DeferredBatch, FprDrift, RebuildPolicy, SaturationDoubling, ShardedFilterStore, StoreBuilder,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

const KEYS: usize = 1 << 18;
const PROBES_PER_THREAD: usize = 64 * 1024;
const BATCH: usize = 4 * 1024;

fn build_store(config: FilterConfig, shards: usize) -> Arc<ShardedFilterStore> {
    let store = StoreBuilder::new()
        .shards(shards)
        .expected_keys(KEYS)
        .bits_per_key(12.0)
        .config(config)
        .build();
    let mut gen = KeyGen::new(0x5707E);
    store.insert_batch(&gen.distinct_keys(KEYS));
    Arc::new(store)
}

/// Run `threads` reader threads, each probing its own key stream in batches
/// against the shared store, and return only when all are done.
fn probe_from_threads(store: &Arc<ShardedFilterStore>, threads: usize) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(store);
                scope.spawn(move || {
                    let mut gen = KeyGen::new(0xBEEF ^ t as u64);
                    let probes = gen.keys(PROBES_PER_THREAD);
                    let mut sel = SelectionVector::with_capacity(BATCH);
                    let mut qualifying = 0u64;
                    for batch in probes.chunks(BATCH) {
                        sel.clear();
                        store.contains_batch(batch, &mut sel);
                        qualifying += sel.len() as u64;
                    }
                    qualifying
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_store_throughput(c: &mut Criterion) {
    let families: Vec<(&str, FilterConfig)> = vec![
        (
            "bloom-cs512",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
        (
            "cuckoo-l16b2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ];
    let max_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut group = c.benchmark_group("store_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (family, config) in &families {
        for shards in [1usize, 4, 16] {
            let store = build_store(*config, shards);
            for threads in [1usize, 2, 4] {
                if threads > max_threads {
                    // Oversubscribed threads only measure scheduler noise.
                    eprintln!(
                        "store_throughput: skipping {family}/P={shards}/T={threads} \
                         (host has {max_threads} hardware threads)"
                    );
                    continue;
                }
                group.throughput(Throughput::Elements((threads * PROBES_PER_THREAD) as u64));
                group.bench_with_input(
                    BenchmarkId::new(*family, format!("P{shards}xT{threads}")),
                    &store,
                    |b, store| {
                        b.iter(|| probe_from_threads(store, threads));
                    },
                );
            }
        }
    }
    group.finish();
}

/// Mixed lifecycle workload: each iteration inserts one fresh batch, deletes
/// the batch inserted `LAG` iterations ago, probes a fixed key stream, and
/// runs a maintenance round every eighth iteration. The live key count stays
/// roughly constant (`LAG · LIFECYCLE_BATCH`), so the sweep isolates the
/// policies' *maintenance* cost rather than unbounded growth.
fn bench_store_lifecycle(c: &mut Criterion) {
    const LIFECYCLE_BATCH: usize = 4 * 1024;
    const LAG: usize = 4;
    let policies: Vec<(&str, Arc<dyn RebuildPolicy>)> = vec![
        ("saturation-doubling", Arc::new(SaturationDoubling)),
        ("fpr-drift", Arc::new(FprDrift::new(2.0))),
        ("deferred-batch", Arc::new(DeferredBatch::new(8 * 1024))),
    ];
    let families: Vec<(&str, FilterConfig)> = vec![
        (
            "bloom-cs512",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
        (
            "cuckoo-l16b2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ];
    let mut group = c.benchmark_group("store_lifecycle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (family, config) in &families {
        for (policy_name, policy) in &policies {
            let store = StoreBuilder::new()
                .shards(8)
                .expected_keys(LAG * LIFECYCLE_BATCH)
                .bits_per_key(16.0)
                .config(*config)
                .rebuild_policy(Arc::clone(policy))
                .build();
            let mut gen = KeyGen::new(0x11FE);
            let probes = gen.keys(LIFECYCLE_BATCH);
            let mut backlog: VecDeque<Vec<u32>> = VecDeque::new();
            for _ in 0..LAG {
                let batch = gen.distinct_keys(LIFECYCLE_BATCH);
                store.insert_batch(&batch);
                backlog.push_back(batch);
            }
            let mut sel = SelectionVector::with_capacity(LIFECYCLE_BATCH);
            let mut iteration = 0usize;
            // Elements per iteration: one insert batch + one delete batch +
            // one probe batch.
            group.throughput(Throughput::Elements(3 * LIFECYCLE_BATCH as u64));
            group.bench_function(BenchmarkId::new(*family, *policy_name), |b| {
                b.iter(|| {
                    let fresh = gen.distinct_keys(LIFECYCLE_BATCH);
                    store.insert_batch(&fresh);
                    backlog.push_back(fresh);
                    let old = backlog
                        .pop_front()
                        .expect("backlog primed with LAG batches");
                    store.delete_batch(&old);
                    sel.clear();
                    store.contains_batch(&probes, &mut sel);
                    iteration += 1;
                    if iteration.is_multiple_of(8) {
                        store.maintain();
                    }
                    sel.len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store_throughput, bench_store_lifecycle);
criterion_main!(benches);
