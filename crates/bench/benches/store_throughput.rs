//! Multi-threaded lookup throughput of the sharded filter store: shard count
//! x thread count x filter family — plus a mixed insert/delete/lookup
//! lifecycle workload sweeping the three rebuild policies, with background
//! (off-lock) rebuilds on and off, and a `tiered` group driving the
//! advisor-built LSM-style tiered store (2- and 4-level, hot-churn and
//! cold-scan mixes).
//!
//! The serving-layer claim behind `pof-store`: batched lookups against
//! snapshot-isolated shards scale with reader threads (lookups are wait-free
//! against writers and share no mutable state), so aggregate throughput at T
//! threads approaches T times the single-thread rate on hosts with T cores.
//! The lifecycle sweep quantifies the policy trade-off: inline doubling pays
//! for rebuilds on the write path, FPR drift amortizes them against the
//! budget, deferred batching moves them into `maintain()` entirely — and the
//! background maintainer takes the rebuild off the write path altogether,
//! which the max-writer-stall statistic makes visible.
//!
//! CI integration: `POF_BENCH_QUICK=1` shrinks every dimension so the whole
//! bench finishes in seconds (the perf-smoke lane), and `POF_BENCH_JSON=
//! <path>` (or `=1` for the default `BENCH_store.json`) additionally runs a
//! deterministic growth-workload sweep — shards x family x policy x
//! background on/off — plus a delete-heavy sweep comparing the Bloom delete
//! modes (tombstone vs counting cells: counting must show zero rebuilds and
//! zero tombstones at equal final key counts) and records ops/s, max writer
//! stall, rebuild and tombstone counts as JSON, so the repo accumulates a
//! bench trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{AnyFilter, FilterConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::probe::ProbePlan;
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{
    BloomDeleteMode, DeferredBatch, FprDrift, LevelSpec, PersistOptions, RebuildMode,
    RebuildPolicy, SaturationDoubling, ShardedFilterStore, StoreBuilder, StoreOptions,
    TieredProbeScratch, TieredStore, TieredStoreBuilder,
};
use serde::Value;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `POF_BENCH_QUICK=1`: the CI perf-smoke mode — same matrices, much smaller
/// key counts and measurement windows.
fn quick() -> bool {
    std::env::var("POF_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn keys_total() -> usize {
    if quick() {
        1 << 14
    } else {
        1 << 18
    }
}

fn probes_per_thread() -> usize {
    if quick() {
        16 * 1024
    } else {
        64 * 1024
    }
}

fn measurement() -> Duration {
    if quick() {
        Duration::from_millis(120)
    } else {
        Duration::from_secs(1)
    }
}

fn warm_up() -> Duration {
    if quick() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    }
}

const BATCH: usize = 4 * 1024;

fn families() -> Vec<(&'static str, FilterConfig)> {
    vec![
        (
            "bloom-cs512",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
        (
            "cuckoo-l16b2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ]
}

fn policies() -> Vec<(&'static str, Arc<dyn RebuildPolicy>)> {
    vec![
        ("saturation-doubling", Arc::new(SaturationDoubling)),
        ("fpr-drift", Arc::new(FprDrift::new(2.0))),
        ("deferred-batch", Arc::new(DeferredBatch::new(8 * 1024))),
    ]
}

fn build_store(config: FilterConfig, shards: usize) -> Arc<ShardedFilterStore> {
    let store = StoreBuilder::new()
        .shards(shards)
        .expected_keys(keys_total())
        .bits_per_key(12.0)
        .config(config)
        .build();
    let mut gen = KeyGen::new(0x5707E);
    store.insert_batch(&gen.distinct_keys(keys_total()));
    Arc::new(store)
}

/// Run `threads` reader threads, each probing its own key stream in batches
/// against the shared store, and return only when all are done.
fn probe_from_threads(store: &Arc<ShardedFilterStore>, threads: usize) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(store);
                scope.spawn(move || {
                    let mut gen = KeyGen::new(0xBEEF ^ t as u64);
                    let probes = gen.keys(probes_per_thread());
                    let mut sel = SelectionVector::with_capacity(BATCH);
                    let mut qualifying = 0u64;
                    for batch in probes.chunks(BATCH) {
                        sel.clear();
                        store.contains_batch(batch, &mut sel);
                        qualifying += sel.len() as u64;
                    }
                    qualifying
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_store_throughput(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut group = c.benchmark_group("store_throughput");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    for (family, config) in &families() {
        for shards in [1usize, 4, 16] {
            let store = build_store(*config, shards);
            for threads in [1usize, 2, 4] {
                if threads > max_threads {
                    // Oversubscribed threads only measure scheduler noise.
                    eprintln!(
                        "store_throughput: skipping {family}/P={shards}/T={threads} \
                         (host has {max_threads} hardware threads)"
                    );
                    continue;
                }
                group.throughput(Throughput::Elements((threads * probes_per_thread()) as u64));
                group.bench_with_input(
                    BenchmarkId::new(*family, format!("P{shards}xT{threads}")),
                    &store,
                    |b, store| {
                        b.iter(|| probe_from_threads(store, threads));
                    },
                );
            }
        }
    }
    group.finish();
}

/// Mixed lifecycle workload: each iteration inserts one fresh batch, deletes
/// the batch inserted `LAG` iterations ago, probes a fixed key stream, and
/// runs a maintenance round every eighth iteration. The live key count stays
/// roughly constant (`LAG · LIFECYCLE_BATCH`), so the sweep isolates the
/// policies' *maintenance* cost rather than unbounded growth — with the
/// background maintainer both off (inline rebuilds) and on (off-lock swaps).
fn bench_store_lifecycle(c: &mut Criterion) {
    let lifecycle_batch: usize = if quick() { 1024 } else { 4 * 1024 };
    const LAG: usize = 4;
    let mut group = c.benchmark_group("store_lifecycle");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    for (family, config) in &families() {
        for (policy_name, policy) in &policies() {
            for background in [false, true] {
                let store = StoreBuilder::new()
                    .shards(8)
                    .expected_keys(LAG * lifecycle_batch)
                    .bits_per_key(16.0)
                    .config(*config)
                    .rebuild_policy(Arc::clone(policy))
                    .rebuild_mode(if background {
                        RebuildMode::Background
                    } else {
                        RebuildMode::Inline
                    })
                    .build();
                let mut gen = KeyGen::new(0x11FE);
                let probes = gen.keys(lifecycle_batch);
                let mut backlog: VecDeque<Vec<u32>> = VecDeque::new();
                for _ in 0..LAG {
                    let batch = gen.distinct_keys(lifecycle_batch);
                    store.insert_batch(&batch);
                    backlog.push_back(batch);
                }
                let mut sel = SelectionVector::with_capacity(lifecycle_batch);
                let mut iteration = 0usize;
                // Elements per iteration: one insert batch + one delete batch
                // + one probe batch.
                group.throughput(Throughput::Elements(3 * lifecycle_batch as u64));
                let mode = if background { "background" } else { "inline" };
                group.bench_function(
                    BenchmarkId::new(*family, format!("{policy_name}/{mode}")),
                    |b| {
                        b.iter(|| {
                            let fresh = gen.distinct_keys(lifecycle_batch);
                            store.insert_batch(&fresh);
                            backlog.push_back(fresh);
                            let old = backlog
                                .pop_front()
                                .expect("backlog primed with LAG batches");
                            store.delete_batch(&old);
                            sel.clear();
                            store.contains_batch(&probes, &mut sel);
                            iteration += 1;
                            if iteration.is_multiple_of(8) {
                                store.maintain();
                            }
                            sel.len()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// Delete-heavy churn throughput of a Bloom store, tombstone vs counting
/// cells: each iteration inserts a fresh batch, deletes the batch inserted
/// `LAG` iterations ago, probes, and maintains every eighth iteration. The
/// store is sized so growth never triggers — the only rebuilds left are the
/// tombstone purges, which counting mode eliminates entirely (deletes clear
/// sidecar-counted bits in place).
fn bench_store_delete_modes(c: &mut Criterion) {
    let batch: usize = if quick() { 1024 } else { 4 * 1024 };
    const LAG: usize = 4;
    let mut group = c.benchmark_group("store_delete_modes");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    let (family, config) = families()[0];
    for mode in [BloomDeleteMode::Tombstone, BloomDeleteMode::Counting] {
        let store = StoreBuilder::new()
            .shards(8)
            .expected_keys(4 * LAG * batch)
            .bits_per_key(16.0)
            .config(config)
            .bloom_deletes(mode)
            .build();
        let mut gen = KeyGen::new(0xDE1E);
        let probes = gen.keys(batch);
        let mut backlog: VecDeque<Vec<u32>> = VecDeque::new();
        for _ in 0..LAG {
            let primed = gen.distinct_keys(batch);
            store.insert_batch(&primed);
            backlog.push_back(primed);
        }
        let mut sel = SelectionVector::with_capacity(batch);
        let mut iteration = 0usize;
        group.throughput(Throughput::Elements(3 * batch as u64));
        let label = match mode {
            BloomDeleteMode::Tombstone => "tombstone",
            BloomDeleteMode::Counting => "counting",
        };
        group.bench_function(BenchmarkId::new(family, label), |b| {
            b.iter(|| {
                let fresh = gen.distinct_keys(batch);
                store.insert_batch(&fresh);
                backlog.push_back(fresh);
                let old = backlog.pop_front().expect("backlog primed");
                store.delete_batch(&old);
                sel.clear();
                store.contains_batch(&probes, &mut sel);
                iteration += 1;
                if iteration.is_multiple_of(8) {
                    store.maintain();
                }
                sel.len()
            });
        });
    }
    group.finish();
}

/// Level specs for the tiered benches: a `t_w` ladder from a skipped
/// memtable probe (hot) to a skipped simulated-disk read (cold), with an
/// 8x LSM-style fanout in expected keys per level and churn concentrated on
/// the hot level. The advisor turns the extremes into different families —
/// Bloom (counting deletes) for the hot end, an immutable fuse filter for
/// the static cold end — which the recorded JSON cells pin down.
fn tiered_level_specs(levels: usize) -> Vec<LevelSpec> {
    let ladder = [32.0, 4_096.0, 131_072.0, 16_777_216.0];
    let picks: &[usize] = match levels {
        2 => &[0, 3],
        _ => &[0, 1, 2, 3],
    };
    picks
        .iter()
        .enumerate()
        .map(|(index, &rung)| LevelSpec {
            expected_keys: (1u64 << 14) << (3 * index),
            work_saved_cycles: ladder[rung],
            delete_rate: if index == 0 { 0.4 } else { 0.0 },
            ..LevelSpec::default()
        })
        .collect()
}

/// Build and prime an advisor-configured tiered store: cold levels
/// bulk-loaded to (capped) half occupancy, the hot level to half its sizing.
fn build_tiered(levels: usize, seed: u64) -> TieredStore {
    let specs = tiered_level_specs(levels);
    let mut builder = TieredStoreBuilder::new().shards_per_level(4);
    for &spec in &specs {
        builder = builder.level(spec);
    }
    let store = builder.build();
    let mut gen = KeyGen::new(seed);
    let cap: u64 = if quick() { 1 << 14 } else { 1 << 19 };
    for (level, spec) in specs.iter().enumerate().skip(1) {
        let count = (spec.expected_keys / 2).min(cap) as usize;
        store.load_level(level, &gen.distinct_keys(count));
    }
    store.insert_batch(&gen.distinct_keys((specs[0].expected_keys / 2) as usize));
    store
}

/// The tiered hot-churn protocol, shared by the criterion bench and the
/// recorded JSON cell so the two can never drift apart: a resident probe
/// set plus a LAG-deep backlog of waves; each step inserts a fresh wave,
/// deletes the oldest, probes the resident set through the reusable scratch
/// path, and maintains (letting size-ratio compactions fire) every eighth
/// step.
struct TieredChurn {
    gen: KeyGen,
    resident: Vec<u32>,
    backlog: VecDeque<Vec<u32>>,
    sel: SelectionVector,
    scratch: TieredProbeScratch,
    batch: usize,
    iteration: usize,
}

impl TieredChurn {
    const LAG: usize = 4;

    /// Prime the store with the resident set and LAG backlog waves.
    fn prime(store: &TieredStore, batch: usize, seed: u64) -> Self {
        let mut gen = KeyGen::new(seed);
        let resident = gen.distinct_keys(batch);
        store.insert_batch(&resident);
        let mut backlog = VecDeque::new();
        for _ in 0..Self::LAG {
            let primed = gen.distinct_keys(batch);
            store.insert_batch(&primed);
            backlog.push_back(primed);
        }
        Self {
            gen,
            resident,
            backlog,
            sel: SelectionVector::with_capacity(batch),
            scratch: TieredProbeScratch::new(),
            batch,
            iteration: 0,
        }
    }

    /// One churn step: 3·batch logical operations. Returns the probe's
    /// qualifying count (fed back to criterion to pin the work).
    fn step(&mut self, store: &TieredStore) -> usize {
        let fresh = self.gen.distinct_keys(self.batch);
        store.insert_batch(&fresh);
        self.backlog.push_back(fresh);
        let old = self.backlog.pop_front().expect("backlog primed");
        store.delete_batch(&old);
        self.sel.clear();
        store.contains_batch_with(&self.resident, &mut self.sel, &mut self.scratch);
        self.iteration += 1;
        if self.iteration.is_multiple_of(8) {
            store.maintain();
        }
        self.sel.len()
    }
}

/// Tiered-store throughput: 2- and 4-level advisor-built stores under a
/// hot-churn mix (inserts + deletes + hot-resident probes, short-circuiting
/// at level 0, compactions riding the size-ratio policy) and a cold-scan mix
/// (absent keys cascading through every level's filter).
fn bench_tiered(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiered");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    for levels in [2usize, 4] {
        let store = build_tiered(levels, 0x71E0 + levels as u64);
        let mut gen = KeyGen::new(0x7C01);
        // Cold scan: uniform random probes — essentially all absent, so the
        // batch cascades through every level before answering negative.
        let probes = gen.keys(probes_per_thread());
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("cold-scan", format!("L{levels}")),
            &store,
            |b, store| {
                let mut sel = SelectionVector::with_capacity(BATCH);
                let mut scratch = TieredProbeScratch::new();
                b.iter(|| {
                    let mut qualifying = 0u64;
                    for batch in probes.chunks(BATCH) {
                        sel.clear();
                        store.contains_batch_with(batch, &mut sel, &mut scratch);
                        qualifying += sel.len() as u64;
                    }
                    qualifying
                });
            },
        );
        // Hot churn: steady-state insert/delete waves against level 0 plus
        // probes of a resident working set (answered at level 0 until a
        // compaction moves it down).
        let churn_batch: usize = if quick() { 1024 } else { 4 * 1024 };
        let mut churn = TieredChurn::prime(&store, churn_batch, 0x7C02);
        group.throughput(Throughput::Elements(3 * churn_batch as u64));
        group.bench_function(BenchmarkId::new("hot-churn", format!("L{levels}")), |b| {
            b.iter(|| churn.step(&store));
        });
    }
    group.finish();
}

/// Batch sizes the mass-probe sweep visits: from far below the staged
/// threshold (where the scalar kernels win on startup cost) to deep
/// streaming territory where the staged pipeline hides the miss latencies.
const MASS_PROBE_BATCHES: [usize; 4] = [64, 1024, 10_000, 100_000];

/// Key count behind the mass-probe filters — deliberately the same in quick
/// and full mode: the staged kernels only pay off once the filter outgrows
/// the cache, so shrinking the build would measure the wrong regime. 2^22
/// keys put every family's footprint (≈10 MB Bloom/Cuckoo at 20 bits/key,
/// ≈4.6 MB fuse8) well past the 2 MiB L2 on the reference host.
const MASS_PROBE_KEYS: usize = 1 << 22;

/// Filters for the mass-probe sweep, one per family with a staged kernel,
/// all built over the same distinct key set. 20 bits/key keeps the Cuckoo
/// configuration feasible (l16b2 needs ≥ l/0.84 ≈ 19); the fuse footprint
/// follows from the key count alone.
fn mass_probe_filters() -> Vec<(&'static str, AnyFilter)> {
    let mut gen = KeyGen::new(0x3A55);
    let keys = gen.distinct_keys(MASS_PROBE_KEYS);
    let mut filters: Vec<(&'static str, AnyFilter)> = families()
        .iter()
        .map(|(family, config)| {
            (
                *family,
                AnyFilter::build_with_keys(config, &keys, 20.0)
                    .expect("mass-probe filter construction"),
            )
        })
        .collect();
    filters.push((
        "fuse8",
        AnyFilter::build_with_keys(
            &FilterConfig::Fuse(pof_core::FuseConfig::fuse8()),
            &keys,
            16.0,
        )
        .expect("mass-probe fuse construction"),
    ));
    filters
}

/// Staged vs scalar kernel throughput per family and batch size, through the
/// explicit entry points (no routing thresholds), so the sweep shows both
/// where the hash → prefetch → probe pipeline wins and where the scalar
/// kernels still do (small batches against warm lines).
fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sweep");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    for (family, filter) in &mass_probe_filters() {
        let mut gen = KeyGen::new(0xBA7C);
        for batch in MASS_PROBE_BATCHES {
            // A pool of distinct windows, cycled per iteration: re-probing
            // one fixed batch would measure warm-line latency, not the
            // streaming workload the staged kernel targets.
            let pool = gen.keys(batch * 32);
            let mut sel = SelectionVector::with_capacity(batch);
            let mut plan = ProbePlan::new();
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/staged"), batch),
                &pool,
                |b, pool| {
                    let mut cursor = 0usize;
                    b.iter(|| {
                        let window = &pool[cursor..cursor + batch];
                        cursor = (cursor + batch) % pool.len();
                        sel.clear();
                        filter.contains_batch_staged(window, &mut sel, &mut plan);
                        sel.len()
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{family}/scalar"), batch),
                &pool,
                |b, pool| {
                    let mut cursor = 0usize;
                    b.iter(|| {
                        let window = &pool[cursor..cursor + batch];
                        cursor = (cursor + batch) % pool.len();
                        sel.clear();
                        filter.contains_batch_scalar(window, &mut sel);
                        sel.len()
                    });
                },
            );
        }
    }
    group.finish();
}

/// One recorded mass-probe cell: staged vs scalar rate at one
/// (family, batch-size) point. The two kernels' selections are asserted
/// bit-for-bit identical on every window before anything is timed. Each
/// repetition probes a *fresh* window of `pool` — re-probing one fixed batch
/// would leave its filter lines cache-resident after the first pass and
/// measure warm-line latency instead of the streaming workload the staged
/// kernel exists for.
fn mass_probe_cell(
    family: &str,
    filter: &AnyFilter,
    batch: usize,
    pool: &[u32],
) -> Vec<(String, Value)> {
    let reps = pool.len() / batch;
    let mut plan = ProbePlan::new();
    let mut staged_sel = SelectionVector::with_capacity(batch);
    let mut scalar_sel = SelectionVector::with_capacity(batch);
    let mut hits = 0u64;
    for window in pool.chunks_exact(batch) {
        staged_sel.clear();
        scalar_sel.clear();
        filter.contains_batch_staged(window, &mut staged_sel, &mut plan);
        filter.contains_batch_scalar(window, &mut scalar_sel);
        assert_eq!(
            staged_sel.as_slice(),
            scalar_sel.as_slice(),
            "staged selections diverge from scalar for {family} at batch {batch}"
        );
        hits += staged_sel.len() as u64;
    }
    let mut sink = 0u64;
    let start = Instant::now();
    for window in pool.chunks_exact(batch) {
        staged_sel.clear();
        filter.contains_batch_staged(window, &mut staged_sel, &mut plan);
        sink += staged_sel.len() as u64;
    }
    let staged_rate = (reps * batch) as f64 / start.elapsed().as_secs_f64();
    let start = Instant::now();
    for window in pool.chunks_exact(batch) {
        scalar_sel.clear();
        filter.contains_batch_scalar(window, &mut scalar_sel);
        sink += scalar_sel.len() as u64;
    }
    let scalar_rate = (reps * batch) as f64 / start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    // Which kernel the family-aware automatic routing would pick for this
    // cell — recorded so scripts/check_mass_probe.py can gate the *decision*
    // (the routed kernel must not be the losing one), which is exactly the
    // regression shape the fuse footprint floor fixed.
    let routed_staged = pof_filter::probe::staged_worthwhile_for(
        pof_filter::Filter::kind(filter),
        batch,
        pof_filter::Filter::size_bits(filter) / 8,
    );
    vec![
        ("family".into(), Value::Str(family.into())),
        ("batch".into(), Value::U64(batch as u64)),
        ("staged_mops".into(), Value::F64(staged_rate / 1e6)),
        ("scalar_mops".into(), Value::F64(scalar_rate / 1e6)),
        ("speedup".into(), Value::F64(staged_rate / scalar_rate)),
        (
            "routed".into(),
            Value::Str(if routed_staged { "staged" } else { "scalar" }.into()),
        ),
        ("hits".into(), Value::U64(hits)),
    ]
}

/// Scratch directory for one persistence cell, recreated empty.
fn persistence_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pof-bench-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench persistence dir");
    dir
}

/// One recorded persistence cell at `n` keys: snapshot write bandwidth,
/// mmap-open recovery versus the cold in-memory rebuild the store would pay
/// without persistence, and the pure WAL replay rate (journal-only recovery,
/// no snapshot). Every recovery path asserts the exact recovered key count
/// before anything is recorded.
fn persistence_cell(n: usize) -> Vec<(String, Value)> {
    let options = || StoreOptions {
        shard_count: 8,
        capacity_per_shard: (n / 8).max(64),
        ..StoreOptions::default()
    };
    let persist = || PersistOptions {
        wal_rotate_records: 0,
        ..PersistOptions::durable()
    };
    let mut gen = KeyGen::new(0x5EED ^ n as u64);
    let keys = gen.distinct_keys(n);

    // Snapshot write bandwidth, then mmap-open recovery of that snapshot.
    let dir = persistence_dir(&format!("snap-{n}"));
    let store = ShardedFilterStore::open_with(&dir, options(), persist()).expect("fresh open");
    store.insert_batch(&keys);
    let start = Instant::now();
    store.persist_checkpoint().expect("bench checkpoint");
    let write_secs = start.elapsed().as_secs_f64();
    let snapshot_bytes: u64 = std::fs::read_dir(&dir)
        .expect("read bench dir")
        .filter_map(Result::ok)
        .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "snap"))
        .filter_map(|entry| entry.metadata().ok())
        .map(|meta| meta.len())
        .sum();
    drop(store);
    let start = Instant::now();
    let recovered = ShardedFilterStore::open(&dir, options()).expect("mmap recovery");
    let mmap_open_secs = start.elapsed().as_secs_f64();
    assert_eq!(recovered.key_count(), n, "mmap recovery lost keys");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // The cold baseline: rebuild the same store from the raw key set, the
    // start-up cost a process without snapshots pays on every boot.
    let start = Instant::now();
    let cold = ShardedFilterStore::from_options(options());
    cold.insert_batch(&keys);
    let cold_secs = start.elapsed().as_secs_f64();
    assert_eq!(cold.key_count(), n, "cold rebuild lost keys");
    drop(cold);

    // Pure WAL replay: a journal holding every insert and no snapshot at
    // all — the worst-case recovery tail a crash right before the first
    // checkpoint leaves behind.
    let dir = persistence_dir(&format!("wal-{n}"));
    let store = ShardedFilterStore::open_with(&dir, options(), persist()).expect("fresh open");
    for chunk in keys.chunks(4096) {
        store.insert_batch(chunk);
    }
    drop(store);
    let start = Instant::now();
    let replayed = ShardedFilterStore::open(&dir, options()).expect("wal replay recovery");
    let replay_secs = start.elapsed().as_secs_f64();
    assert_eq!(replayed.key_count(), n, "wal replay lost keys");
    drop(replayed);
    let _ = std::fs::remove_dir_all(&dir);

    vec![
        ("keys".into(), Value::U64(n as u64)),
        ("snapshot_bytes".into(), Value::U64(snapshot_bytes)),
        (
            "snapshot_write_mb_s".into(),
            Value::F64(snapshot_bytes as f64 / 1e6 / write_secs.max(1e-9)),
        ),
        ("mmap_open_ms".into(), Value::F64(mmap_open_secs * 1e3)),
        ("cold_rebuild_ms".into(), Value::F64(cold_secs * 1e3)),
        (
            "mmap_open_speedup".into(),
            Value::F64(cold_secs / mmap_open_secs.max(1e-9)),
        ),
        (
            "wal_replay_mkeys_s".into(),
            Value::F64(n as f64 / 1e6 / replay_secs.max(1e-9)),
        ),
    ]
}

/// Policies for the recorded sweep. Same trio as the lifecycle bench, but
/// the deferred-batch overflow cap is small enough that the growth workload
/// actually hits it between maintenance rounds — otherwise the policy never
/// rebuilds on the write path and both arms trivially report zero stall.
fn sweep_policies() -> Vec<(&'static str, Arc<dyn RebuildPolicy>)> {
    vec![
        ("saturation-doubling", Arc::new(SaturationDoubling)),
        ("fpr-drift", Arc::new(FprDrift::new(2.0))),
        ("deferred-batch", Arc::new(DeferredBatch::new(512))),
    ]
}

/// One cell of the recorded sweep: a deterministic growth-heavy lifecycle
/// run (inserts outpace deletes 2:1, so shards must keep rebuilding on the
/// write path) with identical key streams for the inline and background
/// variants — equal final key counts by construction, so the max-writer-
/// stall comparison is apples to apples.
fn sweep_cell(
    config: FilterConfig,
    shards: usize,
    policy: Arc<dyn RebuildPolicy>,
    background: bool,
) -> Vec<(String, Value)> {
    let batch: usize = if quick() { 2 * 1024 } else { 8 * 1024 };
    let iters: usize = if quick() { 96 } else { 192 };
    const LAG: usize = 4;
    let store = StoreBuilder::new()
        .shards(shards)
        .expected_keys(2 * batch) // undersized: growth rebuilds guaranteed
        .bits_per_key(14.0)
        .config(config)
        .rebuild_policy(policy)
        .rebuild_mode(if background {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        })
        .build();
    let mut gen = KeyGen::new(0x6E0B);
    let probes = gen.keys(batch);
    let mut sel = SelectionVector::with_capacity(batch);
    let mut backlog: VecDeque<Vec<u32>> = VecDeque::new();
    let start = Instant::now();
    let mut ops = 0u64;
    for iteration in 0..iters {
        let fresh = gen.distinct_keys(batch);
        store.insert_batch(&fresh);
        backlog.push_back(fresh);
        ops += batch as u64;
        // Delete an old batch every other iteration: net growth 2:1.
        if iteration % 2 == 1 && backlog.len() > LAG {
            let old = backlog.pop_front().expect("backlog non-empty");
            store.delete_batch(&old);
            ops += batch as u64;
        }
        sel.clear();
        store.contains_batch(&probes, &mut sel);
        ops += batch as u64;
        if (iteration + 1) % 8 == 0 {
            store.maintain();
        }
    }
    // Settle in-flight rebuilds outside the timed window's stall stats
    // (maintain() never counts toward writer stall by design).
    store.maintain();
    let elapsed = start.elapsed();
    let stats = store.stats();
    vec![
        ("shards".into(), Value::U64(shards as u64)),
        ("policy".into(), Value::Str(stats.shards[0].policy.into())),
        ("background".into(), Value::Bool(background)),
        (
            "ops_per_sec".into(),
            Value::F64(ops as f64 / elapsed.as_secs_f64()),
        ),
        ("elapsed_ms".into(), Value::F64(elapsed.as_secs_f64() * 1e3)),
        ("final_keys".into(), Value::U64(store.key_count() as u64)),
        ("rebuilds".into(), Value::U64(stats.total_rebuilds())),
        (
            "rebuilds_background".into(),
            Value::U64(stats.total_background_rebuilds()),
        ),
        (
            "max_writer_stall_ns".into(),
            Value::U64(stats.max_writer_stall_ns()),
        ),
        (
            "writer_rebuild_stall_ns".into(),
            Value::U64(stats.writer_rebuild_stall_ns()),
        ),
        (
            "rebuild_wait_ns".into(),
            Value::U64(stats.total_rebuild_wait_ns()),
        ),
    ]
}

/// One cell of the recorded **delete-heavy** sweep: steady-state churn
/// (insert one batch, delete the batch inserted `LAG` iterations ago, probe,
/// maintain every 8th iteration) over the paper's canonical Bloom
/// configuration, sized so growth rebuilds never trigger. Identical key
/// streams for the tombstone and counting cells — equal final key counts by
/// construction — so the remaining differences are exactly the delete-mode
/// story: tombstone mode accumulates tombstones between maintenance rounds
/// and keeps paying purge rebuilds, counting mode holds both at zero.
fn delete_heavy_cell(
    policy: Arc<dyn RebuildPolicy>,
    mode: BloomDeleteMode,
) -> Vec<(String, Value)> {
    let batch: usize = if quick() { 2 * 1024 } else { 8 * 1024 };
    let iters: usize = if quick() { 48 } else { 128 };
    const LAG: usize = 4;
    let config = families()[0].1;
    let store = StoreBuilder::new()
        .shards(4)
        // Ample capacity: live keys hold steady at LAG batches, far below
        // the sizing, so the only rebuilds left are delete bookkeeping.
        .expected_keys(4 * LAG * batch)
        .bits_per_key(14.0)
        .config(config)
        .rebuild_policy(policy)
        .bloom_deletes(mode)
        .build();
    let mut gen = KeyGen::new(0xDE1E7);
    let probes = gen.keys(batch);
    let mut sel = SelectionVector::with_capacity(batch);
    let mut backlog: VecDeque<Vec<u32>> = VecDeque::new();
    for _ in 0..LAG {
        let primed = gen.distinct_keys(batch);
        store.insert_batch(&primed);
        backlog.push_back(primed);
    }
    let start = Instant::now();
    let mut ops = 0u64;
    let mut peak_tombstones = 0u64;
    for iteration in 0..iters {
        let fresh = gen.distinct_keys(batch);
        store.insert_batch(&fresh);
        backlog.push_back(fresh);
        let old = backlog
            .pop_front()
            .expect("backlog primed with LAG batches");
        store.delete_batch(&old);
        sel.clear();
        store.contains_batch(&probes, &mut sel);
        ops += 3 * batch as u64;
        if (iteration + 1) % 8 == 0 {
            // Tombstones are monotone between maintenance rounds: sampling
            // right before the purge captures the per-round peak.
            peak_tombstones = peak_tombstones.max(store.stats().total_tombstones());
            store.maintain();
        }
    }
    let elapsed = start.elapsed();
    let stats = store.stats();
    peak_tombstones = peak_tombstones.max(stats.total_tombstones());
    vec![
        ("policy".into(), Value::Str(stats.shards[0].policy.into())),
        (
            "bloom_delete_mode".into(),
            Value::Str(
                match mode {
                    BloomDeleteMode::Tombstone => "tombstone",
                    BloomDeleteMode::Counting => "counting",
                }
                .into(),
            ),
        ),
        (
            "ops_per_sec".into(),
            Value::F64(ops as f64 / elapsed.as_secs_f64()),
        ),
        ("elapsed_ms".into(), Value::F64(elapsed.as_secs_f64() * 1e3)),
        ("final_keys".into(), Value::U64(store.key_count() as u64)),
        ("rebuilds".into(), Value::U64(stats.total_rebuilds())),
        ("tombstones_peak".into(), Value::U64(peak_tombstones)),
        (
            "tombstones_final".into(),
            Value::U64(stats.total_tombstones()),
        ),
        (
            "counting_sidecar_bytes".into(),
            Value::U64(stats.total_counting_sidecar_bytes()),
        ),
    ]
}

/// One cell of the recorded **tiered** sweep: build the advisor-configured
/// store (the per-level family/budget/delete-mode choices are the point of
/// the record), run a deterministic hot-churn phase and a cold-scan phase,
/// and capture throughput plus the full per-level picture. The extreme-`t_w`
/// levels must come out as different families — hot Bloom (counting
/// deletes), cold static fuse — which downstream tooling can assert right
/// off the JSON.
fn tiered_cell(levels: usize) -> Vec<(String, Value)> {
    let batch: usize = if quick() { 2 * 1024 } else { 8 * 1024 };
    let iters: usize = if quick() { 32 } else { 96 };
    let store = build_tiered(levels, 0x71ED);

    // Hot-churn phase: the shared TieredChurn protocol (insert a wave,
    // delete the LAG-old wave, probe the resident set, maintain — letting
    // the size-ratio policy compact — every eighth iteration).
    let mut churn = TieredChurn::prime(&store, batch, 0x71EE);
    let start = Instant::now();
    let mut churn_ops = 0u64;
    for _ in 0..iters {
        churn.step(&store);
        churn_ops += 3 * batch as u64;
    }
    let churn_elapsed = start.elapsed();

    // Cold-scan phase: uniform random probes, essentially all absent, so
    // every batch cascades through the full level hierarchy.
    let probes = churn.gen.keys(if quick() { 1 << 16 } else { 1 << 19 });
    let mut sel = SelectionVector::with_capacity(batch);
    let mut scratch = TieredProbeScratch::new();
    let start = Instant::now();
    let mut scan_ops = 0u64;
    for chunk in probes.chunks(batch) {
        sel.clear();
        store.contains_batch_with(chunk, &mut sel, &mut scratch);
        scan_ops += chunk.len() as u64;
    }
    let scan_elapsed = start.elapsed();

    let stats = store.stats();
    eprintln!(
        "tiered L{levels}: families [{}], hot-churn {:.2} Mops/s, cold-scan {:.2} Mops/s, \
         {} compactions, {} tombstones",
        stats
            .levels
            .iter()
            .map(|l| format!("{}@tw={}", l.family, l.work_saved_cycles))
            .collect::<Vec<_>>()
            .join(", "),
        churn_ops as f64 / churn_elapsed.as_secs_f64() / 1e6,
        scan_ops as f64 / scan_elapsed.as_secs_f64() / 1e6,
        stats.compactions,
        stats.total_tombstones(),
    );
    let level_cells: Vec<Value> = stats
        .levels
        .iter()
        .map(|level| {
            Value::Map(vec![
                ("level".into(), Value::U64(level.level as u64)),
                ("t_w".into(), Value::F64(level.work_saved_cycles)),
                ("expected_keys".into(), Value::U64(level.expected_keys)),
                ("delete_rate".into(), Value::F64(level.delete_rate)),
                (
                    "family".into(),
                    Value::Str(
                        match level.family {
                            pof_filter::FilterKind::Bloom => "bloom",
                            pof_filter::FilterKind::Cuckoo => "cuckoo",
                            pof_filter::FilterKind::Fuse => "fuse",
                        }
                        .into(),
                    ),
                ),
                ("config".into(), Value::Str(level.config_label.clone())),
                (
                    "delete_mode".into(),
                    Value::Str(
                        match level.delete_mode {
                            BloomDeleteMode::Tombstone => "tombstone",
                            BloomDeleteMode::Counting => "counting",
                        }
                        .into(),
                    ),
                ),
                (
                    "bits_per_key_budget".into(),
                    Value::F64(level.bits_per_key_budget),
                ),
                (
                    "bytes_per_live_key".into(),
                    Value::F64(level.bits_per_live_key() / 8.0),
                ),
                (
                    "bits_per_live_key".into(),
                    Value::F64(level.bits_per_live_key()),
                ),
                (
                    "fingerprint_bits".into(),
                    Value::U64(u64::from(level.fingerprint_bits)),
                ),
                (
                    "construction_retries".into(),
                    Value::U64(level.construction_retries),
                ),
                ("live_keys".into(), Value::U64(level.live_keys)),
                ("tombstones".into(), Value::U64(level.tombstones)),
                ("rebuilds".into(), Value::U64(level.rebuilds)),
            ])
        })
        .collect();
    vec![
        ("levels_count".into(), Value::U64(levels as u64)),
        (
            "hot_churn_ops_per_sec".into(),
            Value::F64(churn_ops as f64 / churn_elapsed.as_secs_f64()),
        ),
        (
            "cold_scan_ops_per_sec".into(),
            Value::F64(scan_ops as f64 / scan_elapsed.as_secs_f64()),
        ),
        ("compactions".into(), Value::U64(stats.compactions)),
        (
            "total_tombstones".into(),
            Value::U64(stats.total_tombstones()),
        ),
        ("final_keys".into(), Value::U64(store.key_count() as u64)),
        ("levels".into(), Value::Seq(level_cells)),
    ]
}

/// One cold-tier cell for the fuse-vs-Cuckoo comparison: a single-level
/// store pinned to `config`, bulk-loaded with exactly `keys`, then scanned
/// with uniform (essentially all absent) probes — the static cold tier the
/// immutable family exists for. Records the realized memory footprint
/// (`bits_per_live_key`) and the scan rate at *equal live keys*, so the two
/// cells are directly comparable.
fn cold_family_cell(
    name: &str,
    config: FilterConfig,
    bits_per_key: f64,
    keys: &[u32],
) -> Vec<(String, Value)> {
    let store = StoreBuilder::new()
        .shards(4)
        .expected_keys(keys.len())
        .bits_per_key(bits_per_key)
        .config(config)
        .build();
    store.insert_batch(keys);
    store.maintain();
    let mut gen = KeyGen::new(0xC01D);
    let probes = gen.keys(if quick() { 1 << 16 } else { 1 << 19 });
    let mut sel = SelectionVector::with_capacity(BATCH);
    let start = Instant::now();
    let mut ops = 0u64;
    for chunk in probes.chunks(BATCH) {
        sel.clear();
        store.contains_batch(chunk, &mut sel);
        ops += chunk.len() as u64;
    }
    let elapsed = start.elapsed();
    let stats = store.stats();
    vec![
        ("family".into(), Value::Str(name.into())),
        ("config".into(), Value::Str(store.config().label())),
        ("live_keys".into(), Value::U64(stats.total_keys())),
        (
            "bits_per_live_key".into(),
            Value::F64(stats.bits_per_live_key()),
        ),
        (
            "fingerprint_bits".into(),
            Value::U64(u64::from(store.config().fingerprint_bits())),
        ),
        (
            "construction_retries".into(),
            Value::U64(stats.shards.iter().map(|s| s.construction_retries).sum()),
        ),
        (
            "cold_scan_ops_per_sec".into(),
            Value::F64(ops as f64 / elapsed.as_secs_f64()),
        ),
    ]
}

/// The online re-advising drift story, recorded end to end: a hot churny
/// counting-Bloom store cools into a cold static tier; the store's own
/// decayed traffic observation plus a drifted workload hint walk it — live,
/// through the hysteresis gates and the snapshot/delta-replay/swap rebuild
/// machinery — onto an immutable fuse filter. The cell records the families
/// at both ends, the migration count, the round the flip confirmed, the
/// realized bits per live key before and after (the memory the migration
/// reclaimed), and asserts zero false negatives at every round on the way.
fn drift_cell() -> Vec<(String, Value)> {
    use pof_filter::FilterKind;
    // Cuckoo's power-of-two table sizing gives its modeled space efficiency
    // a sawtooth in n, so there are narrow pockets (around 21k live keys,
    // for one) where the advisor keeps Cuckoo over fuse16 at the cold spec.
    // The live set is sized to land inside a wide fuse-favorable region
    // (everything in 23k..33k and around 128k resolves to fuse16).
    let live_target: usize = if quick() { 24_000 } else { 1 << 17 };
    let churn = live_target / 20;
    let store = StoreBuilder::new()
        .shards(2)
        .expected_keys(live_target * 2)
        .bits_per_key(14.0)
        .bloom_deletes(BloomDeleteMode::Counting)
        .readvise(pof_store::ReadviseOptions {
            workload: LevelSpec {
                expected_keys: live_target as u64,
                work_saved_cycles: 32.0,
                sigma: 0.5,
                delete_rate: 0.4,
                expected_probes_per_key: 4.0,
            },
            ..pof_store::ReadviseOptions::default()
        })
        .build();
    let mut gen = KeyGen::new(0xD21F);
    let mut live = gen.distinct_keys(live_target + churn);
    store.insert_batch(&live);
    let mut sel = SelectionVector::with_capacity(live.len());
    let mut false_negative_rounds = 0u64;
    let mut check = |store: &ShardedFilterStore, live: &[u32], sel: &mut SelectionVector| {
        sel.clear();
        store.contains_batch(live, sel);
        if sel.len() != live.len() {
            false_negative_rounds += 1;
        }
    };
    // Hot phase: churn under the hot hint; the family must not move.
    for _ in 0..4 {
        let doomed: Vec<u32> = live.drain(..churn).collect();
        store.delete_batch(&doomed);
        let fresh = gen.distinct_keys(churn);
        store.insert_batch(&fresh);
        live.extend(fresh);
        check(&store, &live, &mut sel);
        store.run_pending_readvise();
    }
    let hot_family = store.config().label();
    let hot_migrations = store.stats().total_migrations();
    let bloom_bits_per_live_key = store.stats().bits_per_live_key();
    // The workload cools: misses now cost a simulated disk read, churn
    // stops, and the filter will serve scans for the rest of its life.
    store.set_workload_hint(LevelSpec {
        expected_keys: live.len() as u64,
        work_saved_cycles: 16_000_000.0,
        sigma: 0.0,
        delete_rate: 0.0,
        expected_probes_per_key: 1_000_000.0,
    });
    let mut migrated_at_round: i64 = -1;
    for round in 0..60 {
        check(&store, &live, &mut sel);
        store.run_pending_readvise();
        if store.config().kind() == FilterKind::Fuse {
            migrated_at_round = round;
            break;
        }
    }
    check(&store, &live, &mut sel);
    // Cold-scan throughput on the migrated store.
    let probes = gen.keys(if quick() { 1 << 16 } else { 1 << 19 });
    let start = Instant::now();
    let mut ops = 0u64;
    for chunk in probes.chunks(BATCH) {
        sel.clear();
        store.contains_batch(chunk, &mut sel);
        ops += chunk.len() as u64;
    }
    let elapsed = start.elapsed();
    let stats = store.stats();
    assert_eq!(false_negative_rounds, 0, "drift cell saw a false negative");
    vec![
        ("hot_family".into(), Value::Str(hot_family)),
        ("hot_migrations".into(), Value::U64(hot_migrations)),
        (
            "bloom_bits_per_live_key".into(),
            Value::F64(bloom_bits_per_live_key),
        ),
        ("final_family".into(), Value::Str(store.config().label())),
        ("final_config".into(), Value::Str(store.config().label())),
        ("migrations".into(), Value::U64(stats.total_migrations())),
        ("migrated_at_round".into(), Value::I64(migrated_at_round)),
        ("live_keys".into(), Value::U64(stats.total_keys())),
        (
            "bits_per_live_key".into(),
            Value::F64(stats.bits_per_live_key()),
        ),
        (
            "fingerprint_bits".into(),
            Value::U64(u64::from(store.config().fingerprint_bits())),
        ),
        (
            "counting_sidecar_bytes".into(),
            Value::U64(stats.total_counting_sidecar_bytes()),
        ),
        (
            "false_negative_rounds".into(),
            Value::U64(false_negative_rounds),
        ),
        (
            "cold_scan_ops_per_sec".into(),
            Value::F64(ops as f64 / elapsed.as_secs_f64()),
        ),
    ]
}

/// Repetitions per sweep cell. Each run's stall figure is the *maximum* over
/// thousands of write calls, so a single scheduler preemption (the writer
/// descheduled mid-call while the maintainer holds the only core) defines
/// it; taking the minimum across repetitions recovers the structural stall
/// while every sample is still recorded for transparency.
const SWEEP_REPS: usize = 3;

fn cell_u64(cell: &[(String, Value)], key: &str) -> u64 {
    cell.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0)
}

fn cell_f64(cell: &[(String, Value)], key: &str) -> f64 {
    cell.iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::F64(x) => Some(*x),
            _ => None,
        })
        .unwrap_or(f64::NAN)
}

/// Run one cell [`SWEEP_REPS`] times and keep the repetition with the lowest
/// (rebuild stall, call stall) pair, attaching every repetition's samples.
fn sweep_cell_best(
    config: FilterConfig,
    shards: usize,
    policy: &Arc<dyn RebuildPolicy>,
    background: bool,
) -> Vec<(String, Value)> {
    let rank = |cell: &[(String, Value)]| {
        (
            cell_u64(cell, "writer_rebuild_stall_ns"),
            cell_u64(cell, "max_writer_stall_ns"),
        )
    };
    let mut best: Option<Vec<(String, Value)>> = None;
    let mut call_samples = Vec::new();
    let mut rebuild_samples = Vec::new();
    for _ in 0..SWEEP_REPS {
        let cell = sweep_cell(config, shards, Arc::clone(policy), background);
        call_samples.push(Value::U64(cell_u64(&cell, "max_writer_stall_ns")));
        rebuild_samples.push(Value::U64(cell_u64(&cell, "writer_rebuild_stall_ns")));
        if best.as_ref().is_none_or(|b| rank(&cell) < rank(b)) {
            best = Some(cell);
        }
    }
    let mut cell = best.expect("SWEEP_REPS >= 1");
    cell.push(("stall_samples_ns".into(), Value::Seq(call_samples)));
    cell.push((
        "rebuild_stall_samples_ns".into(),
        Value::Seq(rebuild_samples),
    ));
    cell
}

/// Run the recorded sweep (shards x family x policy x background) and write
/// it as JSON to `path`. Also prints the inline-vs-background stall
/// comparison so the perf-smoke log is self-explanatory.
fn write_bench_json(path: &str) {
    let mut results: Vec<Value> = Vec::new();
    for (family, config) in &families() {
        for shards in [2usize, 8] {
            for (policy_name, policy) in &sweep_policies() {
                let mut pair = Vec::new();
                for background in [false, true] {
                    let mut cell = sweep_cell_best(*config, shards, policy, background);
                    cell.insert(0, ("family".into(), Value::Str((*family).into())));
                    pair.push(cell);
                }
                let (inline_stall, background_stall) = (
                    cell_u64(&pair[0], "max_writer_stall_ns"),
                    cell_u64(&pair[1], "max_writer_stall_ns"),
                );
                let (inline_rebuild, background_rebuild) = (
                    cell_u64(&pair[0], "writer_rebuild_stall_ns"),
                    cell_u64(&pair[1], "writer_rebuild_stall_ns"),
                );
                eprintln!(
                    "sweep {family}/P{shards}/{policy_name}: writer rebuild stall \
                     inline {:.2} ms vs background {:.2} ms \
                     (max call: {:.2} vs {:.2} ms)",
                    inline_rebuild as f64 / 1e6,
                    background_rebuild as f64 / 1e6,
                    inline_stall as f64 / 1e6,
                    background_stall as f64 / 1e6,
                );
                results.extend(pair.into_iter().map(Value::Map));
            }
        }
    }
    // The delete-heavy sweep: tombstone vs counting cells per policy, one
    // Bloom family (Cuckoo shards delete in place regardless of the knob, so
    // there is nothing to compare there).
    let mut delete_heavy: Vec<Value> = Vec::new();
    for (policy_name, policy) in &sweep_policies() {
        let mut pair = Vec::new();
        for mode in [BloomDeleteMode::Tombstone, BloomDeleteMode::Counting] {
            let mut cell = delete_heavy_cell(Arc::clone(policy), mode);
            cell.insert(0, ("family".into(), Value::Str(families()[0].0.into())));
            pair.push(cell);
        }
        eprintln!(
            "delete-heavy {policy_name}: rebuilds {} (tombstone) vs {} (counting), \
             peak tombstones {} vs {}, final keys {} vs {}",
            cell_u64(&pair[0], "rebuilds"),
            cell_u64(&pair[1], "rebuilds"),
            cell_u64(&pair[0], "tombstones_peak"),
            cell_u64(&pair[1], "tombstones_peak"),
            cell_u64(&pair[0], "final_keys"),
            cell_u64(&pair[1], "final_keys"),
        );
        delete_heavy.extend(pair.into_iter().map(Value::Map));
    }
    // The tiered sweep: advisor-built 2- and 4-level stores, per-level
    // family/budget/delete-mode records plus hot-churn and cold-scan
    // throughput.
    let tiered: Vec<Value> = [2usize, 4]
        .into_iter()
        .map(|levels| Value::Map(tiered_cell(levels)))
        .collect();
    // The cold-tier family comparison: fuse8 vs the Cuckoo cold baseline at
    // equal live keys. The fuse cell must come out at strictly lower
    // bits-per-live-key — the memory edge the immutable family buys.
    let mut cold_gen = KeyGen::new(0xF0_5E);
    let cold_keys = cold_gen.distinct_keys(if quick() { 1 << 14 } else { 1 << 17 });
    let tiered_fuse: Vec<Value> = vec![
        Value::Map(cold_family_cell(
            "fuse8",
            FilterConfig::Fuse(pof_core::FuseConfig::fuse8()),
            16.0,
            &cold_keys,
        )),
        Value::Map(cold_family_cell(
            "cuckoo-l16b2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
            16.0,
            &cold_keys,
        )),
    ];
    {
        let bits = |cell: &Value| match cell {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == "bits_per_live_key")
                .and_then(|(_, v)| match v {
                    Value::F64(x) => Some(*x),
                    _ => None,
                })
                .unwrap_or(f64::NAN),
            _ => f64::NAN,
        };
        eprintln!(
            "tiered-fuse cold tier at {} live keys: fuse8 {:.2} bits/key vs cuckoo {:.2} bits/key",
            cold_keys.len(),
            bits(&tiered_fuse[0]),
            bits(&tiered_fuse[1]),
        );
    }
    // The re-advising drift story: one recorded run of the live
    // counting-Bloom → fuse migration as the workload cools.
    let drift_cells = vec![Value::Map(drift_cell())];
    {
        let cell = match &drift_cells[0] {
            Value::Map(entries) => entries.as_slice(),
            _ => unreachable!(),
        };
        eprintln!(
            "drift: {} -> {} in {} migrations (confirmed at round {}), \
             {:.2} -> {:.2} bits/live-key",
            match cell.iter().find(|(k, _)| k == "hot_family") {
                Some((_, Value::Str(s))) => s.as_str(),
                _ => "?",
            },
            match cell.iter().find(|(k, _)| k == "final_family") {
                Some((_, Value::Str(s))) => s.as_str(),
                _ => "?",
            },
            cell_u64(cell, "migrations"),
            match cell.iter().find(|(k, _)| k == "migrated_at_round") {
                Some((_, Value::I64(r))) => *r,
                _ => -1,
            },
            cell_f64(cell, "bloom_bits_per_live_key"),
            cell_f64(cell, "bits_per_live_key"),
        );
    }
    // The mass-probe sweep: staged (hash → prefetch → probe) vs scalar
    // kernel rate per family and batch size, selections asserted identical
    // inside each cell. The 10k cells are the perf-smoke gate
    // (scripts/check_mass_probe.py): staged must not lose to scalar there
    // for the mutable families.
    let mut mass_probe: Vec<Value> = Vec::new();
    for (family, filter) in &mass_probe_filters() {
        let mut probe_gen = KeyGen::new(0x9A55);
        for batch in MASS_PROBE_BATCHES {
            // Equal probe volume per cell regardless of batch size, served
            // as distinct windows so every repetition streams cold lines.
            let target: usize = if quick() { 1 << 21 } else { 1 << 23 };
            let pool = probe_gen.keys((target / batch).max(3) * batch);
            let cell = mass_probe_cell(family, filter, batch, &pool);
            eprintln!(
                "mass-probe {family}/batch {batch}: staged {:.2} Mops/s vs scalar {:.2} Mops/s \
                 ({:.2}x)",
                cell_f64(&cell, "staged_mops"),
                cell_f64(&cell, "scalar_mops"),
                cell_f64(&cell, "speedup"),
            );
            mass_probe.push(Value::Map(cell));
        }
    }
    // The persistence sweep: snapshot write bandwidth, mmap-open vs
    // cold-rebuild recovery, WAL replay rate. The 2^21-key cell is the
    // headline: opening the mapped snapshot must beat rebuilding the store
    // from the raw key set.
    let mut persistence: Vec<Value> = Vec::new();
    for n in if quick() {
        vec![1usize << 16, 1 << 21]
    } else {
        vec![1usize << 16, 1 << 18, 1 << 21]
    } {
        let cell = persistence_cell(n);
        eprintln!(
            "persistence {n} keys: snapshot {:.0} MB/s, mmap open {:.1} ms vs cold rebuild \
             {:.1} ms ({:.1}x), WAL replay {:.2} Mkeys/s",
            cell_f64(&cell, "snapshot_write_mb_s"),
            cell_f64(&cell, "mmap_open_ms"),
            cell_f64(&cell, "cold_rebuild_ms"),
            cell_f64(&cell, "mmap_open_speedup"),
            cell_f64(&cell, "wal_replay_mkeys_s"),
        );
        persistence.push(Value::Map(cell));
    }
    let document = Value::Map(vec![
        ("bench".into(), Value::Str("store_lifecycle_sweep".into())),
        (
            "mode".into(),
            Value::Str(if quick() { "quick" } else { "full" }.into()),
        ),
        (
            "workload".into(),
            Value::Str(
                "growth-heavy mixed lifecycle: 2 insert batches per delete batch, \
                 probe every iteration, maintain every 8th; identical key streams \
                 for inline and background, so final_keys match pairwise. Each cell \
                 is the best of SWEEP_REPS repetitions ranked by \
                 (writer_rebuild_stall_ns, max_writer_stall_ns), all samples in \
                 rebuild_stall_samples_ns / stall_samples_ns: the per-run max is \
                 defined by a single write call, so min-of-max filters scheduler \
                 preemption noise on saturated hosts while keeping the \
                 structural stall"
                    .into(),
            ),
        ),
        ("results".into(), Value::Seq(results)),
        (
            "delete_heavy_workload".into(),
            Value::Str(
                "steady-state churn (insert batch, delete the LAG-old batch, probe, \
                 maintain every 8th) on the canonical Bloom config with ample \
                 capacity: growth never rebuilds, so the cells isolate the delete \
                 mode. Identical key streams per (policy, mode) pair, so final_keys \
                 match pairwise; counting cells must show rebuilds == 0 and \
                 tombstones_peak == 0 where tombstone cells show both > 0"
                    .into(),
            ),
        ),
        ("delete_heavy".into(), Value::Seq(delete_heavy)),
        (
            "tiered_workload".into(),
            Value::Str(
                "advisor-built tiered stores (2-level hot/cold and 4-level t_w \
                 ladder, 8x key fanout, hot delete_rate 0.4): a hot-churn phase \
                 (insert/delete waves + resident probes, size-ratio compactions \
                 every 8th iteration) then a cold-scan phase (absent keys \
                 cascading through every level). Per level the cells record the \
                 advisor's family/config/delete-mode/budget choice and the \
                 realized bytes per live key: the extreme t_w levels must show \
                 different families (hot bloom + counting deletes, cold fuse \
                 for the static end of the ladder)"
                    .into(),
            ),
        ),
        ("tiered".into(), Value::Seq(tiered)),
        (
            "tiered_fuse_workload".into(),
            Value::Str(
                "cold-tier family comparison at equal live keys: one single-level \
                 store pinned to an immutable fuse8 filter, one pinned to the \
                 Cuckoo cold baseline, both bulk-loaded with the same key set and \
                 scanned with uniform absent probes. The fuse cell must record \
                 strictly lower bits_per_live_key"
                    .into(),
            ),
        ),
        ("tiered_fuse".into(), Value::Seq(tiered_fuse)),
        (
            "drift_workload".into(),
            Value::Str(
                "online re-advising end to end: a counting-Bloom store under hot \
                 churn (t_w 32, delete_rate ~0.4, re-advising on with default \
                 hysteresis) is cooled — the workload hint drifts to a simulated \
                 disk miss (t_w 16e6) with lifetime-scale probe volume and the \
                 churn stops — and the store's own decayed traffic observation \
                 walks it live onto an immutable fuse filter through the \
                 snapshot/delta-replay/swap machinery. The cell records families \
                 at both ends, the migration count (>= 1 required), the \
                 confirmation round, fingerprint_bits (> 0 required: the end \
                 state is fingerprint-backed), and bits per live key before and \
                 after (the migration must reclaim memory versus the Bloom \
                 start). false_negative_rounds must be 0: every live key \
                 answered positive at every round across every family \
                 transition"
                    .into(),
            ),
        ),
        ("drift".into(), Value::Seq(drift_cells)),
        (
            "mass_probe_workload".into(),
            Value::Str(
                "staged (hash → prefetch → probe) vs scalar kernel rate through \
                 the explicit per-family entry points, batch sizes 64 / 1k / 10k / \
                 100k against 2^22-key filters (every footprint past L2, so the \
                 probes actually miss): staged and scalar selections asserted \
                 bit-for-bit identical per cell before timing. Staged must not \
                 lose to scalar at the 10k cells for bloom and cuckoo — the \
                 perf-smoke gate; small-batch cells are expected to favor scalar, \
                 which is why the automatic routing keeps a batch-size threshold"
                    .into(),
            ),
        ),
        ("mass_probe".into(), Value::Seq(mass_probe)),
        (
            "persistence_workload".into(),
            Value::Str(
                "durability round-trips per key count (fsync every batch, manual \
                 checkpoints): snapshot_write_mb_s times persist_checkpoint over the \
                 summed .snap bytes it produced; mmap_open_ms reopens the checkpointed \
                 directory (header-checksummed snapshots mapped zero-copy, empty WAL) \
                 versus cold_rebuild_ms re-inserting the same raw key set into a fresh \
                 in-memory store — at the 2^21-key cell the mapped open must win \
                 (mmap_open_speedup > 1); wal_replay_mkeys_s recovers from a journal \
                 holding every insert with no snapshot at all, the worst-case tail a \
                 crash before the first checkpoint leaves. Every recovery asserts the \
                 exact recovered key count before timing is recorded"
                    .into(),
            ),
        ),
        ("persistence".into(), Value::Seq(persistence)),
    ]);
    let json = serde_json::to_string_pretty(&document).expect("bench JSON serialization");
    // `cargo bench` runs with the package directory as CWD; anchor relative
    // paths at the workspace root so the trajectory file lands beside
    // README.md regardless of how the bench was invoked.
    let path = if std::path::Path::new(path).is_absolute() {
        std::path::PathBuf::from(path)
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("bench crate sits two levels below the workspace root")
            .join(path)
    };
    std::fs::write(&path, json + "\n").expect("writing bench JSON");
    eprintln!("bench sweep written to {}", path.display());
}

criterion_group!(
    benches,
    bench_store_throughput,
    bench_store_lifecycle,
    bench_store_delete_modes,
    bench_tiered,
    bench_batch_sweep
);

fn main() {
    benches();
    if let Ok(path) = std::env::var("POF_BENCH_JSON") {
        if !path.is_empty() && path != "0" {
            let path = if path == "1" {
                "BENCH_store.json".to_string()
            } else {
                path
            };
            write_bench_json(&path);
        }
    }
}
