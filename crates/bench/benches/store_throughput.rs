//! Multi-threaded lookup throughput of the sharded filter store: shard count
//! x thread count x filter family.
//!
//! The serving-layer claim behind `pof-store`: batched lookups against
//! snapshot-isolated shards scale with reader threads (lookups are wait-free
//! against writers and share no mutable state), so aggregate throughput at T
//! threads approaches T times the single-thread rate on hosts with T cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::FilterConfig;
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{KeyGen, SelectionVector};
use pof_store::{ShardedFilterStore, StoreBuilder};
use std::sync::Arc;
use std::time::Duration;

const KEYS: usize = 1 << 18;
const PROBES_PER_THREAD: usize = 64 * 1024;
const BATCH: usize = 4 * 1024;

fn build_store(config: FilterConfig, shards: usize) -> Arc<ShardedFilterStore> {
    let store = StoreBuilder::new()
        .shards(shards)
        .expected_keys(KEYS)
        .bits_per_key(12.0)
        .config(config)
        .build();
    let mut gen = KeyGen::new(0x5707E);
    store.insert_batch(&gen.distinct_keys(KEYS));
    Arc::new(store)
}

/// Run `threads` reader threads, each probing its own key stream in batches
/// against the shared store, and return only when all are done.
fn probe_from_threads(store: &Arc<ShardedFilterStore>, threads: usize) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(store);
                scope.spawn(move || {
                    let mut gen = KeyGen::new(0xBEEF ^ t as u64);
                    let probes = gen.keys(PROBES_PER_THREAD);
                    let mut sel = SelectionVector::with_capacity(BATCH);
                    let mut qualifying = 0u64;
                    for batch in probes.chunks(BATCH) {
                        sel.clear();
                        store.contains_batch(batch, &mut sel);
                        qualifying += sel.len() as u64;
                    }
                    qualifying
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

fn bench_store_throughput(c: &mut Criterion) {
    let families: Vec<(&str, FilterConfig)> = vec![
        (
            "bloom-cs512",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
        (
            "cuckoo-l16b2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ];
    let max_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut group = c.benchmark_group("store_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (family, config) in &families {
        for shards in [1usize, 4, 16] {
            let store = build_store(*config, shards);
            for threads in [1usize, 2, 4] {
                if threads > max_threads {
                    // Oversubscribed threads only measure scheduler noise.
                    eprintln!(
                        "store_throughput: skipping {family}/P={shards}/T={threads} \
                         (host has {max_threads} hardware threads)"
                    );
                    continue;
                }
                group.throughput(Throughput::Elements((threads * PROBES_PER_THREAD) as u64));
                group.bench_with_input(
                    BenchmarkId::new(*family, format!("P{shards}xT{threads}")),
                    &store,
                    |b, store| {
                        b.iter(|| probe_from_threads(store, threads));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store_throughput);
criterion_main!(benches);
