//! Construction and probe microbenchmarks for the immutable binary-fuse
//! family: peeling cost per key across sizes and fingerprint widths
//! (`fuse_build`), and point/batch lookup throughput against the mutable
//! families' canonical cold-tier baseline sizes (`fuse_probe`).
//!
//! The advisor's build-cost term charges immutable candidates
//! `build_cycles_per_key` amortized over the level's expected probes; this
//! bench is where that constant can be sanity-checked against the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_filter::{Filter, KeyGen, SelectionVector};
use pof_xorfuse::{FuseConfig, FuseFilter};
use std::time::Duration;

/// `POF_BENCH_QUICK=1`: the CI perf-smoke mode — smaller sizes and windows.
fn quick() -> bool {
    std::env::var("POF_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn measurement() -> Duration {
    if quick() {
        Duration::from_millis(120)
    } else {
        Duration::from_secs(1)
    }
}

fn warm_up() -> Duration {
    if quick() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    }
}

fn sizes() -> Vec<usize> {
    if quick() {
        vec![1 << 12, 1 << 14]
    } else {
        vec![1 << 12, 1 << 16, 1 << 20]
    }
}

fn configs() -> [(&'static str, FuseConfig); 2] {
    [
        ("fuse8", FuseConfig::fuse8()),
        ("fuse16", FuseConfig::fuse16()),
    ]
}

/// Whole-set construction: the cost a cold level pays per re-peel, and the
/// denominator of the advisor's amortized build-cost term.
fn bench_fuse_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_build");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    for n in sizes() {
        let mut gen = KeyGen::new(0xF0_5E);
        let keys = gen.distinct_keys(n);
        for (name, config) in configs() {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(name, format!("n={n}")),
                &keys,
                |bench, keys| {
                    bench.iter(|| {
                        let filter = FuseFilter::build(config, keys);
                        filter.size_bits()
                    });
                },
            );
        }
    }
    group.finish();
}

/// Point and batch lookups against a built filter: three XORed fingerprint
/// probes per key, the read path every cold-tier scan pays.
fn bench_fuse_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse_probe");
    group
        .sample_size(10)
        .warm_up_time(warm_up())
        .measurement_time(measurement());
    let n = if quick() { 1 << 14 } else { 1 << 18 };
    let mut gen = KeyGen::new(0xF0_5F);
    let keys = gen.distinct_keys(n);
    let probes = gen.keys(16 * 1024);
    for (name, config) in configs() {
        let filter = FuseFilter::build(config, &keys);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::new(name, "point"), &probes, |bench, probes| {
            bench.iter(|| {
                let mut qualifying = 0u64;
                for &key in probes {
                    qualifying += u64::from(filter.contains(key));
                }
                qualifying
            });
        });
        group.bench_with_input(BenchmarkId::new(name, "batch"), &probes, |bench, probes| {
            let mut sel = SelectionVector::with_capacity(probes.len());
            bench.iter(|| {
                sel.clear();
                filter.contains_batch(probes, &mut sel);
                sel.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fuse_build, bench_fuse_probe);
criterion_main!(benches);
