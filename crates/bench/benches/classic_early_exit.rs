//! Ablation — the classic Bloom filter's asymmetric lookup cost (§2):
//! negative lookups exit after the first unset bit, positive lookups must test
//! all k bits. Blocked variants do the same work either way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BlockedBloom, BloomConfig, ClassicBloom};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn bench_classic_early_exit(c: &mut Criterion) {
    let mut group = c.benchmark_group("classic_early_exit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let n = 200_000;
    let mut gen = KeyGen::new(3);
    let keys = gen.distinct_keys(n);
    let mut classic = ClassicBloom::with_bits_per_key(n, 12.0, 8);
    let mut blocked = BlockedBloom::with_bits_per_key(
        BloomConfig::cache_sectorized(512, 64, 2, 8, Addressing::PowerOfTwo),
        n,
        12.0,
    );
    for &key in &keys {
        classic.insert(key);
        blocked.insert(key);
    }
    let positive_probes: Vec<u32> = keys.iter().take(16 * 1024).copied().collect();
    let negative_probes = gen.keys(16 * 1024);

    for (filter_name, filter) in [
        ("classic(k=8)", &classic as &dyn Filter),
        ("cache-sectorized(k=8)", &blocked),
    ] {
        for (probe_name, probes) in [
            ("positive", &positive_probes),
            ("negative", &negative_probes),
        ] {
            group.throughput(Throughput::Elements(probes.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(filter_name, probe_name),
                probes,
                |b, probes| {
                    let mut sel = SelectionVector::with_capacity(probes.len());
                    b.iter(|| {
                        sel.clear();
                        filter.contains_batch(probes, &mut sel);
                        sel.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_classic_early_exit);
criterion_main!(benches);
