//! Figure 9 ablation — magic modulo vs power-of-two addressing, for the
//! cache-sectorized Bloom filter and the Cuckoo filter, at a filter size that
//! power-of-two sizing would round up substantially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{AnyFilter, FilterConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn bench_magic_modulo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_magic_modulo");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // 12 MiB requested: power-of-two sizing rounds the block count up ~1.3x.
    let filter_bits = 12u64 * 8 * 1024 * 1024;
    let n = (filter_bits / 12) as usize;
    let mut gen = KeyGen::new(9);
    let keys = gen.distinct_keys(n);
    let probes = gen.keys(16 * 1024);
    let configs: Vec<(&str, FilterConfig)> = vec![
        (
            "bloom/pow2",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
        ),
        (
            "bloom/magic",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
        (
            "cuckoo/pow2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
        (
            "cuckoo/magic",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
        ),
    ];
    for (name, config) in &configs {
        let mut filter = AnyFilter::build(config, n, 12.0);
        for &key in &keys {
            filter.insert(key);
        }
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::new("lookup", name), &probes, |b, probes| {
            let mut sel = SelectionVector::with_capacity(probes.len());
            b.iter(|| {
                sel.clear();
                filter.contains_batch(probes, &mut sel);
                sel.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_magic_modulo);
criterion_main!(benches);
