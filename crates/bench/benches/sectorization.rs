//! Figure 5 — performance impact of sectorization for varying block sizes
//! (blocked with one sector vs sectorized with word-sized sectors, k = 16),
//! for a cache-resident and a DRAM-resident filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BlockedBloom, BloomConfig};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn bench_sectorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_sectorization");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut gen = KeyGen::new(5);
    let probes = gen.keys(16 * 1024);
    for (size_label, filter_bits) in [("16KiB", 16u64 << 13), ("64MiB", 64u64 << 23)] {
        for words_per_block in [1u32, 4, 16] {
            let block_bits = words_per_block * 32;
            let configs = [
                (
                    "blocked",
                    BloomConfig::blocked(block_bits, 16, Addressing::PowerOfTwo),
                ),
                (
                    "sectorized",
                    if words_per_block == 1 {
                        BloomConfig::blocked(block_bits, 16, Addressing::PowerOfTwo)
                    } else {
                        BloomConfig::sectorized(block_bits, 32, 16, Addressing::PowerOfTwo)
                    },
                ),
            ];
            for (variant, config) in configs {
                let n = (filter_bits / 12) as usize;
                let keys = KeyGen::new(6).distinct_keys(n.min(2_000_000));
                let mut filter = BlockedBloom::new(config, filter_bits);
                for &key in &keys {
                    filter.insert(key);
                }
                group.throughput(Throughput::Elements(probes.len() as u64));
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{variant}/{size_label}"),
                        format!("{words_per_block}w"),
                    ),
                    &probes,
                    |b, probes| {
                        let mut sel = SelectionVector::with_capacity(probes.len());
                        b.iter(|| {
                            sel.clear();
                            filter.contains_batch(probes, &mut sel);
                            sel.len()
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sectorization);
criterion_main!(benches);
