//! Figure 15 — SIMD vs scalar batch lookups for the three representative
//! filters, with power-of-two and magic addressing (L1-resident filters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::{AnyFilter, FilterConfig};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Duration;

fn bench_simd_speedup(c: &mut Criterion) {
    let filter_bits = 16u64 << 13; // 16 KiB, L1-resident
    let configs: Vec<(&str, FilterConfig)> = vec![
        (
            "cuckoo(l=16,b=2)/pow2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
        (
            "cuckoo(l=16,b=2)/magic",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
        ),
        (
            "register-blocked(B=32,k=4)/pow2",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        ),
        (
            "register-blocked(B=32,k=4)/magic",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
        ),
        (
            "cache-sectorized(B=512,k=8,z=2)/pow2",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
        ),
        (
            "cache-sectorized(B=512,k=8,z=2)/magic",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
    ];
    let mut group = c.benchmark_group("fig15_simd_speedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let n = (filter_bits / 12) as usize;
    let mut gen = KeyGen::new(15);
    let keys = gen.distinct_keys(n);
    let probes = gen.keys(16 * 1024);
    for (name, config) in &configs {
        for scalar in [false, true] {
            let mut filter = AnyFilter::build(config, n, 12.0);
            for &key in &keys {
                filter.insert(key);
            }
            if scalar {
                filter.force_scalar();
            }
            let label = if scalar { "scalar" } else { "simd" };
            group.throughput(Throughput::Elements(probes.len() as u64));
            group.bench_with_input(BenchmarkId::new(*name, label), &probes, |b, probes| {
                let mut sel = SelectionVector::with_capacity(probes.len());
                b.iter(|| {
                    sel.clear();
                    filter.contains_batch(probes, &mut sel);
                    sel.len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simd_speedup);
criterion_main!(benches);
