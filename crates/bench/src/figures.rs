//! Regeneration routines, one per table/figure of the paper's evaluation.
//!
//! Output format: each routine prints a header line starting with `#` and then
//! tab-separated data rows. EXPERIMENTS.md records the measured shapes against
//! the paper's reported ones.

use crate::measure::{cpu_ghz, measure_lookup_cycles, MeasureOptions};
use pof_bloom::{Addressing, BloomConfig};
use pof_core::skyline::{default_cache_cost_model, synthetic_calibration};
use pof_core::{Calibrator, ConfigSpace, FilterConfig, Platform, Skyline, SkylineGrid};
use pof_cuckoo::{CuckooAddressing, CuckooConfig};
use pof_filter::FilterKind;

/// Speed/size knobs for the harness: `quick` keeps every figure within a few
/// seconds; `full` uses larger probe counts and denser grids.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Use the reduced grids and probe counts.
    pub quick: bool,
    /// Use measured calibration for the skylines instead of the synthetic
    /// cache-cost model (slower but closer to the paper's methodology).
    pub measured_skyline: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self {
            quick: true,
            measured_skyline: false,
        }
    }
}

fn measure_options(quick: bool) -> MeasureOptions {
    MeasureOptions {
        probe_count: if quick { 32 * 1024 } else { 256 * 1024 },
        repetitions: if quick { 2 } else { 5 },
        bits_per_key: 12.0,
        force_scalar: false,
    }
}

/// The three representative filter instances used by Figures 14 and 15.
fn representative_configs() -> Vec<(&'static str, FilterConfig)> {
    vec![
        (
            "register-blocked Bloom (B=32,k=4)",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        ),
        (
            "cache-sectorized Bloom (B=512,k=8,z=2)",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
        ),
        (
            "Cuckoo (b=2,l=16)",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
    ]
}

/// Table 1 — hardware platform description (ours, replacing the paper's four).
pub fn table1() {
    println!("# Table 1: hardware platform (reproduction host)");
    let platform = Platform::detect();
    for (key, value) in platform.table_rows() {
        println!("{key}\t{value}");
    }
}

/// Figure 3 — overhead ρ as a function of the filter size m for a fixed
/// configuration, n and t_w (model-based sketch).
pub fn fig3() {
    println!("# Figure 3: overhead rho vs filter size (cache-sectorized B=512,k=8,z=2; n=2^20, tw=1000 cycles)");
    println!("bits_per_key\tfpr\tlookup_cycles\trho_cycles");
    let n = 1u64 << 20;
    let tw = 1000.0;
    let space = ConfigSpace::default();
    let calibration = synthetic_calibration(&space, &default_cache_cost_model());
    let config = FilterConfig::Bloom(BloomConfig::cache_sectorized(
        512,
        64,
        2,
        8,
        Addressing::Magic,
    ));
    for bpk_times4 in 8..=120u32 {
        let bits_per_key = f64::from(bpk_times4) / 4.0;
        let Some(fpr) = config.modeled_fpr(n as f64, bits_per_key) else {
            continue;
        };
        let lookup = calibration
            .lookup_cycles(&config.label(), bits_per_key * n as f64)
            .unwrap_or(f64::NAN);
        println!(
            "{bits_per_key:.2}\t{fpr:.6e}\t{lookup:.2}\t{:.2}",
            lookup + fpr * tw
        );
    }
}

/// Figure 4 — impact of blocking on the false-positive rate (a) and on the
/// optimal k (b), as functions of the bits-per-key budget.
pub fn fig4() {
    println!("# Figure 4a: false-positive rate vs bits/key (optimal k per point)");
    println!("bits_per_key\tclassic\tblocked512\tblocked64\tblocked32");
    let n = 1_000_000.0;
    let best = |f: &dyn Fn(u32) -> f64| (1..=16).map(f).fold(f64::MAX, f64::min);
    for bpk in 5..=20u32 {
        let m = f64::from(bpk) * n;
        let classic = best(&|k| pof_model::f_std(m, n, k));
        let b512 = best(&|k| pof_model::f_blocked(m, n, k, 512));
        let b64 = best(&|k| pof_model::f_blocked(m, n, k, 64));
        let b32 = best(&|k| pof_model::f_blocked(m, n, k, 32));
        println!("{bpk}\t{classic:.3e}\t{b512:.3e}\t{b64:.3e}\t{b32:.3e}");
    }
    println!("# Figure 4b: optimal k vs bits/key");
    println!("bits_per_key\tclassic\tblocked512\tblocked64\tblocked32");
    for bpk in 5..=20u32 {
        println!(
            "{bpk}\t{}\t{}\t{}\t{}",
            pof_model::optimal_k_classic(f64::from(bpk)),
            pof_model::optimal_k_blocked(f64::from(bpk), 512, 16),
            pof_model::optimal_k_blocked(f64::from(bpk), 64, 16),
            pof_model::optimal_k_blocked(f64::from(bpk), 32, 16),
        );
    }
}

/// Figure 5 — lookup performance of blocked vs sectorized filters for block
/// sizes of 1–16 words, cache-resident (16 KiB) and DRAM-resident (256 MiB).
pub fn fig5(options: &HarnessOptions) {
    let ghz = cpu_ghz();
    let mopts = measure_options(options.quick);
    let dram_bits: u64 = if options.quick { 64 << 23 } else { 256 << 23 };
    println!(
        "# Figure 5: lookups/sec, blocked (one sector) vs sectorized (word-sized sectors), k=16"
    );
    println!("words_per_block\tfilter\tblocked_Mlookups\tsectorized_Mlookups");
    for (label, bits) in [("cache(16KiB)", 16u64 << 13), ("dram", dram_bits)] {
        for words in [1u32, 2, 4, 8, 16] {
            let block_bits = words * 32;
            let blocked = FilterConfig::Bloom(BloomConfig::blocked(
                block_bits.max(32),
                16,
                Addressing::PowerOfTwo,
            ));
            let sectorized = if words == 1 {
                blocked
            } else {
                FilterConfig::Bloom(BloomConfig::sectorized(
                    block_bits,
                    32,
                    16,
                    Addressing::PowerOfTwo,
                ))
            };
            let (_, blocked_ns, _) = measure_lookup_cycles(&blocked, bits, ghz, &mopts);
            let (_, sectorized_ns, _) = measure_lookup_cycles(&sectorized, bits, ghz, &mopts);
            println!(
                "{words}\t{label}\t{:.1}\t{:.1}",
                1e3 / blocked_ns,
                1e3 / sectorized_ns
            );
        }
    }
}

/// Figure 7 — false-positive rate of sectorized vs cache-sectorized filters
/// (k = 8), with (register-)blocked filters as reference.
pub fn fig7() {
    println!("# Figure 7: false-positive rate, k=8");
    println!("bits_per_key\tcache_sectorized_z4\tcache_sectorized_z2\tsectorized_4words\tregister_blocked32\tblocked512");
    let n = 1_000_000.0;
    for bpk in 8..=20u32 {
        let m = f64::from(bpk) * n;
        println!(
            "{bpk}\t{:.3e}\t{:.3e}\t{:.3e}\t{:.3e}\t{:.3e}",
            pof_model::f_cache_sectorized(m, n, 8, 512, 64, 4),
            pof_model::f_cache_sectorized(m, n, 8, 512, 64, 2),
            pof_model::f_sectorized(m, n, 8, 256, 64),
            pof_model::f_blocked(m, n, 8, 32),
            pof_model::f_blocked(m, n, 8, 512),
        );
    }
}

/// Figure 8 — Cuckoo filter false-positive rates for different signature
/// lengths (a) and bucket sizes (b).
pub fn fig8() {
    println!("# Figure 8a: cuckoo FPR vs bits/key, b=4");
    println!("bits_per_key\tl8\tl12\tl16");
    for bpk in 8..=20u32 {
        let row: Vec<String> = [8u32, 12, 16]
            .iter()
            .map(|&l| {
                pof_model::cuckoo::f_cuckoo_for_budget(f64::from(bpk), l, 4)
                    .map_or("-".to_string(), |f| format!("{f:.3e}"))
            })
            .collect();
        println!("{bpk}\t{}", row.join("\t"));
    }
    println!("# Figure 8b: cuckoo FPR vs bits/key, l=8");
    println!("bits_per_key\tb2\tb4\tb8");
    for bpk in 8..=20u32 {
        let row: Vec<String> = [2u32, 4, 8]
            .iter()
            .map(|&b| {
                pof_model::cuckoo::f_cuckoo_for_budget(f64::from(bpk), 8, b)
                    .map_or("-".to_string(), |f| format!("{f:.3e}"))
            })
            .collect();
        println!("{bpk}\t{}", row.join("\t"));
    }
}

/// Figure 9 — lookup cost for varying filter sizes: magic modulo (fine-grained
/// sizes) vs power-of-two sizes.
pub fn fig9(options: &HarnessOptions) {
    let ghz = cpu_ghz();
    let mopts = measure_options(options.quick);
    println!("# Figure 9: lookup cycles vs filter size (cache-sectorized B=512,k=8,z=2)");
    println!("filter_MiB\taddressing\tcycles_per_lookup");
    let max_mib = if options.quick { 128u64 } else { 1024 };
    let mut mib = 4.0f64;
    while mib <= max_mib as f64 {
        let bits = (mib * 8.0 * 1024.0 * 1024.0) as u64;
        let magic = FilterConfig::Bloom(BloomConfig::cache_sectorized(
            512,
            64,
            2,
            8,
            Addressing::Magic,
        ));
        let (magic_cycles, _, _) = measure_lookup_cycles(&magic, bits, ghz, &mopts);
        println!("{mib:.1}\tmagic\t{magic_cycles:.1}");
        if (mib.log2().fract()).abs() < 1e-9 {
            let pow2 = FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            ));
            let (pow2_cycles, _, _) = measure_lookup_cycles(&pow2, bits, ghz, &mopts);
            println!("{mib:.1}\tpow2\t{pow2_cycles:.1}");
        }
        mib *= if options.quick { 1.6 } else { 1.2 };
    }
}

/// Figures 1 & 10 — skyline of the performance-optimal filter *type* over the
/// (n, t_w) grid. Also prints Figure 11a (speedup of the winner over the best
/// configuration of the other type) and Figure 11b (the winner's FPR).
pub fn fig10_11(options: &HarnessOptions) {
    let space = ConfigSpace::default();
    let calibration = if options.measured_skyline {
        let calibrator = Calibrator {
            probe_count: if options.quick { 16 * 1024 } else { 128 * 1024 },
            repetitions: 2,
            bits_per_key: 12.0,
        };
        calibrator.calibrate(&space.all_configs(), &Calibrator::default_size_sweep())
    } else {
        synthetic_calibration(&space, &default_cache_cost_model())
    };
    let skyline = Skyline::new(space, &calibration);
    let grid = if options.quick {
        SkylineGrid::quick()
    } else {
        SkylineGrid::paper()
    };
    let points = skyline.compute(&grid);
    println!("# Figures 1/10: performance-optimal filter type per (n, tw)");
    println!("# Figure 11a: speedup of the winner over the other type's best configuration");
    println!("# Figure 11b: false-positive rate of the winner");
    println!(
        "n\ttw_cycles\tbest_type\tbest_config\tbits_per_key\trho_cycles\tspeedup_vs_other\tfpr"
    );
    for p in &points {
        println!(
            "{}\t{:.0}\t{}\t{}\t{:.0}\t{:.2}\t{:.2}\t{:.2e}",
            p.n,
            p.tw,
            p.best_kind,
            p.best_label,
            p.best_bits_per_key,
            p.best_rho,
            p.speedup_over_other_kind(),
            p.best_fpr
        );
    }
    // Summary: the crossover t_w per problem size (the Figure 1 boundary).
    println!("# crossover summary: smallest tw where Cuckoo wins, per n");
    println!("n\tcrossover_tw");
    for &n in &grid.n_values {
        let crossover = points
            .iter()
            .filter(|p| p.n == n && p.best_kind == FilterKind::Cuckoo)
            .map(|p| p.tw)
            .fold(f64::INFINITY, f64::min);
        println!("{n}\t{crossover:.0}");
    }
}

/// Figure 12 — configuration skylines of the best-performing Bloom filters
/// (variant, block size, sector count, z, k, modulo, size class).
pub fn fig12(options: &HarnessOptions) {
    let space = ConfigSpace {
        quick: options.quick,
        ..ConfigSpace::default()
    };
    // Bloom-only skyline: strip Cuckoo candidates by computing the skyline and
    // reporting the winning Bloom configuration's parameters.
    let calibration = synthetic_calibration(&space, &default_cache_cost_model());
    let skyline = Skyline::new(space, &calibration);
    let grid = if options.quick {
        SkylineGrid::quick()
    } else {
        SkylineGrid::paper()
    };
    println!("# Figure 12: best Bloom configuration per (n, tw)");
    println!("n\ttw_cycles\tvariant\tblock_bytes\tsectors\tz\tk\tmodulo\tfilter_MiB");
    for &n in &grid.n_values {
        for &tw in &grid.tw_values {
            let mut best: Option<(BloomConfig, f64, f64)> = None;
            for config in space.bloom_configs() {
                let fc = FilterConfig::Bloom(config);
                if let Some((bpk, rho, _, _)) = skyline.best_operating_point(&fc, n, tw) {
                    if best.is_none_or(|(_, _, r)| rho < r) {
                        best = Some((config, bpk, rho));
                    }
                }
            }
            if let Some((config, bpk, _)) = best {
                println!(
                    "{n}\t{tw:.0}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2}",
                    config.variant(),
                    config.block_bits / 8,
                    config.sectors(),
                    config.groups,
                    config.k,
                    if config.addressing == Addressing::Magic {
                        "magic"
                    } else {
                        "pow2"
                    },
                    bpk * n as f64 / 8.0 / 1024.0 / 1024.0,
                );
            }
        }
    }
}

/// Figure 13 — configuration skylines of the best-performing Cuckoo filters
/// (signature length, bucket size, modulo, size class).
pub fn fig13(options: &HarnessOptions) {
    let space = ConfigSpace {
        quick: options.quick,
        ..ConfigSpace::default()
    };
    let calibration = synthetic_calibration(&space, &default_cache_cost_model());
    let skyline = Skyline::new(space, &calibration);
    let grid = if options.quick {
        SkylineGrid::quick()
    } else {
        SkylineGrid::paper()
    };
    println!("# Figure 13: best Cuckoo configuration per (n, tw)");
    println!("n\ttw_cycles\tsignature_bits\tbucket_size\tmodulo\tfilter_MiB");
    for &n in &grid.n_values {
        for &tw in &grid.tw_values {
            let mut best: Option<(CuckooConfig, f64, f64)> = None;
            for config in space.cuckoo_configs() {
                let fc = FilterConfig::Cuckoo(config);
                if let Some((bpk, rho, _, _)) = skyline.best_operating_point(&fc, n, tw) {
                    if best.is_none_or(|(_, _, r)| rho < r) {
                        best = Some((config, bpk, rho));
                    }
                }
            }
            if let Some((config, bpk, _)) = best {
                println!(
                    "{n}\t{tw:.0}\t{}\t{}\t{}\t{:.2}",
                    config.signature_bits,
                    config.bucket_size,
                    if config.addressing == CuckooAddressing::Magic {
                        "magic"
                    } else {
                        "pow2"
                    },
                    bpk * n as f64 / 8.0 / 1024.0 / 1024.0,
                );
            }
        }
    }
}

/// Figure 14 — lookup cycles vs filter size for the three representative
/// filters (register-blocked, cache-sectorized, Cuckoo).
pub fn fig14(options: &HarnessOptions) {
    let ghz = cpu_ghz();
    let mopts = measure_options(options.quick);
    println!("# Figure 14: cycles per lookup vs filter size");
    println!("filter_KiB\tfilter\tcycles_per_lookup\tkernel");
    let max_kib = if options.quick {
        128 * 1024u64
    } else {
        512 * 1024
    };
    let mut kib = 8u64;
    while kib <= max_kib {
        for (name, config) in representative_configs() {
            let (cycles, _, kernel) = measure_lookup_cycles(&config, kib * 8 * 1024, ghz, &mopts);
            println!("{kib}\t{name}\t{cycles:.1}\t{kernel}");
        }
        kib *= 4;
    }
}

/// Figure 15 — SIMD vs scalar lookup cost (cycles) and speedup for the three
/// representative filters, with power-of-two and magic sizing, L1-resident.
pub fn fig15(options: &HarnessOptions) {
    let ghz = cpu_ghz();
    let mopts = measure_options(options.quick);
    let scalar_opts = MeasureOptions {
        force_scalar: true,
        ..mopts
    };
    println!("# Figure 15: SIMD vs scalar, L1-resident filters");
    println!("filter\taddressing\tscalar_cycles\tsimd_cycles\tspeedup\tsimd_kernel");
    let bits = 16u64 << 13; // 16 KiB
    let variants: Vec<(&str, &str, FilterConfig)> = vec![
        (
            "Cuckoo (b=2,l=16)",
            "pow2",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)),
        ),
        (
            "Cuckoo (b=2,l=16)",
            "magic",
            FilterConfig::Cuckoo(CuckooConfig::new(16, 2, CuckooAddressing::Magic)),
        ),
        (
            "register-blocked Bloom (B=32,k=4)",
            "pow2",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo)),
        ),
        (
            "register-blocked Bloom (B=32,k=4)",
            "magic",
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::Magic)),
        ),
        (
            "cache-sectorized Bloom (B=512,k=8,z=2)",
            "pow2",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::PowerOfTwo,
            )),
        ),
        (
            "cache-sectorized Bloom (B=512,k=8,z=2)",
            "magic",
            FilterConfig::Bloom(BloomConfig::cache_sectorized(
                512,
                64,
                2,
                8,
                Addressing::Magic,
            )),
        ),
    ];
    for (name, addressing, config) in variants {
        let (scalar_cycles, _, _) = measure_lookup_cycles(&config, bits, ghz, &scalar_opts);
        let (simd_cycles, _, kernel) = measure_lookup_cycles(&config, bits, ghz, &mopts);
        println!(
            "{name}\t{addressing}\t{scalar_cycles:.1}\t{simd_cycles:.1}\t{:.2}\t{kernel}",
            scalar_cycles / simd_cycles
        );
    }
}

/// Run every table/figure in order.
pub fn all(options: &HarnessOptions) {
    table1();
    fig3();
    fig4();
    fig5(options);
    fig7();
    fig8();
    fig9(options);
    fig10_11(options);
    fig12(options);
    fig13(options);
    fig14(options);
    fig15(options);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test: the model-only figures must run without panicking.
    #[test]
    fn model_figures_run() {
        table1();
        fig3();
        fig4();
        fig7();
        fig8();
    }

    /// The skyline figures run on the quick grid with synthetic calibration.
    #[test]
    fn skyline_figures_run() {
        let options = HarnessOptions::default();
        fig10_11(&options);
        fig12(&options);
        fig13(&options);
    }
}
