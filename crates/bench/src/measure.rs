//! Lightweight lookup-throughput measurement shared by the figure harness and
//! the Criterion benches.

use pof_core::{AnyFilter, Calibrator, FilterConfig};
use pof_filter::{Filter, KeyGen, SelectionVector};
use std::time::Instant;

/// Options controlling a single throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Number of probe keys per timed pass.
    pub probe_count: usize,
    /// Number of timed passes (the fastest is reported).
    pub repetitions: usize,
    /// Bits per key used to size the filter from the key count.
    pub bits_per_key: f64,
    /// Force the scalar kernel instead of the SIMD one.
    pub force_scalar: bool,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        Self {
            probe_count: 64 * 1024,
            repetitions: 3,
            bits_per_key: 12.0,
            force_scalar: false,
        }
    }
}

/// Build `config` at (roughly) `filter_bits` bits, probe it with random keys,
/// and return `(cycles_per_lookup, ns_per_lookup, kernel_name)`.
#[must_use]
pub fn measure_lookup_cycles(
    config: &FilterConfig,
    filter_bits: u64,
    cpu_ghz: f64,
    options: &MeasureOptions,
) -> (f64, f64, &'static str) {
    let n = ((filter_bits as f64 / options.bits_per_key) as usize).max(64);
    let mut gen = KeyGen::new(0xBEEF);
    let build_keys = gen.distinct_keys(n);
    let mut filter = AnyFilter::build(config, n, options.bits_per_key);
    for &key in &build_keys {
        filter.insert(key);
    }
    if options.force_scalar {
        filter.force_scalar();
    }
    let kernel = filter.kernel_name();
    let probes = gen.keys(options.probe_count);
    let mut sel = SelectionVector::with_capacity(options.probe_count);

    sel.clear();
    filter.contains_batch(&probes, &mut sel); // warm-up

    let mut best_ns = f64::INFINITY;
    for _ in 0..options.repetitions {
        sel.clear();
        let start = Instant::now();
        filter.contains_batch(&probes, &mut sel);
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(sel.len());
        best_ns = best_ns.min(elapsed * 1e9 / options.probe_count as f64);
    }
    (best_ns * cpu_ghz, best_ns, kernel)
}

/// Estimate the CPU frequency once (delegates to the calibration machinery).
#[must_use]
pub fn cpu_ghz() -> f64 {
    Calibrator::estimate_cpu_ghz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pof_bloom::{Addressing, BloomConfig};

    #[test]
    fn measurement_is_positive_and_scalar_forcing_works() {
        let config =
            FilterConfig::Bloom(BloomConfig::register_blocked(32, 4, Addressing::PowerOfTwo));
        let options = MeasureOptions {
            probe_count: 4096,
            repetitions: 1,
            ..MeasureOptions::default()
        };
        let (cycles, ns, kernel) = measure_lookup_cycles(&config, 1 << 17, 3.0, &options);
        assert!(cycles > 0.0 && ns > 0.0);
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(kernel, "avx2-register32");
        }
        let scalar_options = MeasureOptions {
            force_scalar: true,
            ..options
        };
        let (_, _, kernel) = measure_lookup_cycles(&config, 1 << 17, 3.0, &scalar_options);
        assert_eq!(kernel, "scalar");
    }
}
