//! Shared measurement helpers and the figure-regeneration routines used by
//! the `figures` binary and the Criterion benches.
//!
//! Every public function here corresponds to one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index); each prints its
//! series as tab-separated rows so EXPERIMENTS.md can quote them directly.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod figures;
pub mod measure;

pub use measure::{measure_lookup_cycles, MeasureOptions};
