//! Figure/table regeneration harness.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pof-bench --release --bin figures -- [--full] [--measured] <target>...
//! ```
//!
//! where `<target>` is one of `table1`, `fig1`, `fig3`, `fig4`, `fig5`,
//! `fig7`, `fig8`, `fig9`, `fig10`, `fig11a`, `fig11b`, `fig12`, `fig13`,
//! `fig14`, `fig15` or `all`. `--full` uses the paper-scale grids and probe
//! counts; `--measured` calibrates the skyline from measurements instead of
//! the synthetic cache-cost model.

use pof_bench::figures::{self, HarnessOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = HarnessOptions::default();
    let mut targets = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--full" => options.quick = false,
            "--measured" => options.measured_skyline = true,
            "--quick" => options.quick = true,
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    for target in targets {
        match target.as_str() {
            "table1" => figures::table1(),
            "fig3" => figures::fig3(),
            "fig4" => figures::fig4(),
            "fig5" => figures::fig5(&options),
            "fig7" => figures::fig7(),
            "fig8" => figures::fig8(),
            "fig9" => figures::fig9(&options),
            // Figure 1 is the annotated summary of Figure 10; Figures 11a/11b
            // are printed alongside the same skyline.
            "fig1" | "fig10" | "fig11a" | "fig11b" | "fig10_11" => figures::fig10_11(&options),
            "fig12" => figures::fig12(&options),
            "fig13" => figures::fig13(&options),
            "fig14" => figures::fig14(&options),
            "fig15" => figures::fig15(&options),
            "all" => figures::all(&options),
            unknown => {
                eprintln!("unknown target '{unknown}'");
                eprintln!("valid targets: table1 fig1 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11a fig11b fig12 fig13 fig14 fig15 all");
                std::process::exit(2);
            }
        }
    }
}
