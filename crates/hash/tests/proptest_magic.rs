//! Property-based tests for the magic-modulo machinery.

use pof_hash::magic::{mulhi_u32, MagicDivisor, Modulus};
use pof_hash::HashBits;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The magic divide must agree with hardware division for any numerator,
    /// for the divisor actually chosen by the add-free search.
    #[test]
    fn magic_divide_matches_hardware(desired in 2u32..=u32::MAX / 2, n in any::<u32>()) {
        let magic = MagicDivisor::new_at_least(desired);
        let d = magic.divisor;
        prop_assert_eq!(magic.divide(n), n / d);
        prop_assert_eq!(magic.modulo(n), n % d);
    }

    /// When `try_exact` succeeds, the requested divisor is used unchanged and
    /// the result agrees with hardware division.
    #[test]
    fn exact_magic_matches_hardware(d in 2u32..=u32::MAX / 2, n in any::<u32>()) {
        if let Some(magic) = MagicDivisor::try_exact(d) {
            prop_assert_eq!(magic.divisor, d);
            prop_assert_eq!(magic.divide(n), n / d);
            prop_assert_eq!(magic.modulo(n), n % d);
        }
    }

    /// The add-free divisor bump never exceeds 0.1 % for realistic block counts.
    #[test]
    fn divisor_bump_is_bounded(desired in 64u32..(1u32 << 30)) {
        let magic = MagicDivisor::new_at_least(desired);
        let rel = f64::from(magic.divisor - desired) / f64::from(desired);
        prop_assert!(rel < 0.001, "relative bump {} for desired {}", rel, desired);
    }

    /// mulhi_u32 equals the top half of the widening product.
    #[test]
    fn mulhi_matches_widening(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(mulhi_u32(a, b), ((u64::from(a) * u64::from(b)) >> 32) as u32);
    }

    /// Any modulus reduction stays in range, and for power-of-two sizes the
    /// reduction equals `%`.
    #[test]
    fn modulus_reduce_in_range(desired in 1u32..(1u32 << 28), h in any::<u32>()) {
        let magic = Modulus::magic_at_least(desired);
        let pow2 = Modulus::pow2_at_least(desired);
        prop_assert!(magic.reduce(h) < magic.size());
        prop_assert!(pow2.reduce(h) < pow2.size());
        prop_assert_eq!(pow2.reduce(h), h % pow2.size());
        prop_assert_eq!(magic.reduce(h), h % magic.size());
    }

    /// HashBits consumption: consuming the same widths from the same seed is
    /// deterministic, and every chunk fits in the requested width.
    #[test]
    fn hash_bits_deterministic_and_bounded(seed in any::<u64>(), widths in prop::collection::vec(1u32..=32, 1..20)) {
        let mut a = HashBits::new(seed);
        let mut b = HashBits::new(seed);
        for &w in &widths {
            let va = a.consume(w);
            let vb = b.consume(w);
            prop_assert_eq!(va, vb);
            if w < 32 {
                prop_assert!(va < (1u32 << w));
            }
        }
    }
}
