//! Magic modulo: division/modulo by an arbitrary constant via multiply–shift.
//!
//! §5.2 of the paper observes that sizing filters to powers of two (so modulo
//! becomes a bitwise AND) wastes up to 44 % memory or precision, yet a true
//! integer division is too slow and is unavailable in SIMD instruction sets.
//! The solution is the compiler-writers' technique of *magic numbers*
//! (Granlund & Montgomery; Hacker's Delight): replace `n / d` for a constant
//! `d` by a multiply, a shift and possibly an add.
//!
//! The paper's twist is to exploit a degree of freedom the compiler does not
//! have: the divisor (the number of filter blocks or Cuckoo buckets) may be
//! *slightly increased* until its magic number falls into the "no trailing
//! add" class, so the hot path is exactly
//!
//! ```text
//! q = mulhi_u32(n, magic) >> shift          // floor(n / d)
//! i = n - q * d                             // n mod d       (Eq. 9)
//! ```
//!
//! [`MagicDivisor::new_at_least`] performs that search; in practice the
//! divisor grows by far less than 0.1 % (the paper reports ≤ 0.0134 %).

/// High 32 bits of the 64-bit product of two unsigned 32-bit integers.
///
/// This is the `mulhi_u32` primitive from Eq. 9 of the paper. It maps directly
/// to a single `imul`/`pmuludq` instruction.
#[inline(always)]
#[must_use]
pub fn mulhi_u32(a: u32, b: u32) -> u32 {
    ((u64::from(a) * u64::from(b)) >> 32) as u32
}

/// A precomputed "add-free" magic divisor: `floor(n / divisor)` for any
/// `n < 2^32` is `mulhi_u32(n, magic) >> shift`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MagicDivisor {
    /// The divisor this magic number was computed for.
    pub divisor: u32,
    /// The 32-bit magic multiplier.
    pub magic: u32,
    /// Post-multiply right-shift amount (applied to the *high* product word).
    pub shift: u32,
}

impl MagicDivisor {
    /// Try to compute an add-free magic number for exactly `divisor`.
    ///
    /// Returns `None` if the divisor belongs to the class that requires the
    /// multiply–shift–**add** sequence (or if `divisor < 2`; a divisor of one
    /// has a trivial modulo of zero and is rejected so callers handle it
    /// explicitly).
    #[must_use]
    pub fn try_exact(divisor: u32) -> Option<Self> {
        if divisor < 2 {
            return None;
        }
        if divisor.is_power_of_two() {
            // 2^k: magic = 2^(32-k) with p = 32 is exact (error 0). For k = 0
            // this would not fit, but that case was rejected above.
            let k = divisor.trailing_zeros();
            return Some(Self {
                divisor,
                magic: 1u32 << (32 - k),
                shift: 0,
            });
        }
        let d = u64::from(divisor);
        // Search the smallest precision p such that M = ceil(2^p / d) fits in
        // 32 bits and satisfies the Granlund–Montgomery error bound
        //   M*d - 2^p <= 2^(p-32),
        // which guarantees floor(n*M / 2^p) == floor(n/d) for all n < 2^32.
        for p in 32..=63u32 {
            let two_p = 1u128 << p;
            let m = two_p.div_ceil(u128::from(d));
            if m >= (1u128 << 32) {
                continue;
            }
            let err = m * u128::from(d) - two_p;
            if err <= (1u128 << (p - 32)) {
                return Some(Self {
                    divisor,
                    magic: m as u32,
                    shift: p - 32,
                });
            }
        }
        None
    }

    /// Compute an add-free magic divisor for the smallest divisor `>= desired`.
    ///
    /// This is the search the filters use at construction time: the desired
    /// number of blocks/buckets is bumped until it falls into the add-free
    /// class (Eq. 10 in the paper). The relative increase is tiny; see the
    /// `divisor_increase_is_tiny` test.
    ///
    /// # Panics
    /// Panics if `desired < 2` or if no suitable divisor exists below `u32::MAX`
    /// (which cannot happen for `desired <= u32::MAX - 64`).
    #[must_use]
    pub fn new_at_least(desired: u32) -> Self {
        assert!(desired >= 2, "divisor must be at least 2");
        let mut d = desired;
        loop {
            if let Some(found) = Self::try_exact(d) {
                return found;
            }
            d = d
                .checked_add(1)
                .expect("no add-free magic divisor found below u32::MAX");
        }
    }

    /// `floor(n / self.divisor)` via multiply–shift.
    #[inline(always)]
    #[must_use]
    pub fn divide(&self, n: u32) -> u32 {
        mulhi_u32(n, self.magic) >> self.shift
    }

    /// `n mod self.divisor` via multiply–shift and one fused multiply-subtract
    /// (Eq. 9 of the paper, with the typo `* h` corrected to `* divisor`).
    #[inline(always)]
    #[must_use]
    pub fn modulo(&self, n: u32) -> u32 {
        n.wrapping_sub(self.divide(n).wrapping_mul(self.divisor))
    }
}

/// Addressing mode for a filter: either a power-of-two size (modulo = bitwise
/// AND) or an (almost) arbitrary size via [`MagicDivisor`].
///
/// Corresponds to the "Modulo" dimension of Figures 12f and 13c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulus {
    /// `size = 2^log2`; `modulo(h) = h & (size - 1)`.
    PowerOfTwo {
        /// Base-2 logarithm of the size.
        log2: u32,
    },
    /// Arbitrary size; `modulo(h)` uses the magic multiply–shift sequence.
    Magic(MagicDivisor),
}

impl Modulus {
    /// Power-of-two modulus of the given size.
    ///
    /// # Panics
    /// Panics if `size` is not a power of two or is zero.
    #[must_use]
    pub fn pow2(size: u32) -> Self {
        assert!(size.is_power_of_two(), "size must be a power of two");
        Self::PowerOfTwo {
            log2: size.trailing_zeros(),
        }
    }

    /// Power-of-two modulus of at least the given size (rounds up).
    #[must_use]
    pub fn pow2_at_least(desired: u32) -> Self {
        let size = desired.max(1).next_power_of_two();
        Self::pow2(size)
    }

    /// Magic modulus with a divisor of at least `desired` (bumped into the
    /// add-free class).
    #[must_use]
    pub fn magic_at_least(desired: u32) -> Self {
        if desired <= 1 {
            // A single block: every hash maps to block zero. Represent as a
            // power-of-two of size 1.
            return Self::PowerOfTwo { log2: 0 };
        }
        Self::Magic(MagicDivisor::new_at_least(desired))
    }

    /// The actual size (number of addressable blocks/buckets).
    #[inline]
    #[must_use]
    pub fn size(&self) -> u32 {
        match self {
            Self::PowerOfTwo { log2 } => 1u32 << log2,
            Self::Magic(m) => m.divisor,
        }
    }

    /// Reduce a hash value to `[0, size)`.
    #[inline(always)]
    #[must_use]
    pub fn reduce(&self, h: u32) -> u32 {
        match self {
            Self::PowerOfTwo { log2 } => h & ((1u32 << log2) - 1),
            Self::Magic(m) => m.modulo(h),
        }
    }

    /// True if this is the magic (non-power-of-two capable) variant.
    #[inline]
    #[must_use]
    pub fn is_magic(&self) -> bool {
        matches!(self, Self::Magic(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulhi_matches_widening_multiply() {
        let pairs = [
            (0u32, 0u32),
            (1, 1),
            (u32::MAX, u32::MAX),
            (0x8000_0000, 2),
            (12345, 67890),
        ];
        for (a, b) in pairs {
            let expected = ((u64::from(a) * u64::from(b)) >> 32) as u32;
            assert_eq!(mulhi_u32(a, b), expected);
        }
    }

    #[test]
    fn divide_and_modulo_match_hardware_for_many_divisors() {
        // Exhaustive over a structured set of numerators for each divisor.
        let divisors = [
            2u32,
            3,
            5,
            6,
            7,
            9,
            10,
            11,
            60,
            100,
            127,
            128,
            129,
            641,
            1000,
            4095,
            4097,
            65535,
            65537,
            1_000_003,
            16_777_213,
            2_147_483_647,
        ];
        let numerators = |d: u32| {
            let mut v = vec![0u32, 1, 2, d - 1, d, d + 1, u32::MAX, u32::MAX - 1];
            for i in 1..64u32 {
                v.push(i.wrapping_mul(0x9E37_79B1));
            }
            v
        };
        for d in divisors {
            let Some(magic) = MagicDivisor::try_exact(d).or(Some(MagicDivisor::new_at_least(d)))
            else {
                unreachable!()
            };
            if magic.divisor != d {
                continue; // bumped; correctness for the bumped divisor checked below
            }
            for n in numerators(d) {
                assert_eq!(magic.divide(n), n / d, "divide n={n} d={d}");
                assert_eq!(magic.modulo(n), n % d, "modulo n={n} d={d}");
            }
        }
    }

    #[test]
    fn new_at_least_is_correct_for_bumped_divisors() {
        for desired in [3u32, 100, 1021, 30_000, 123_457, 9_999_999, 1 << 30] {
            let magic = MagicDivisor::new_at_least(desired);
            assert!(magic.divisor >= desired);
            let d = magic.divisor;
            for n in [0u32, 1, d - 1, d, d + 1, d * 2 + 1, u32::MAX, 0xDEAD_BEEF] {
                assert_eq!(magic.divide(n), n / d);
                assert_eq!(magic.modulo(n), n % d);
            }
        }
    }

    #[test]
    fn divisor_increase_is_tiny() {
        // The paper reports at most 0.0134 % increase. Allow a little slack but
        // verify the same order of magnitude across a sweep.
        let mut worst = 0.0f64;
        let mut d = 1000u32;
        while d < 1u32 << 28 {
            let magic = MagicDivisor::new_at_least(d);
            let rel = (magic.divisor - d) as f64 / d as f64;
            worst = worst.max(rel);
            d = (d as f64 * 1.37) as u32 + 1;
        }
        assert!(worst < 0.001, "worst relative increase {worst} too large");
    }

    #[test]
    fn power_of_two_divisors_are_always_exact() {
        for k in 1..=31u32 {
            let d = 1u32 << k;
            let magic = MagicDivisor::try_exact(d).expect("pow2 should be add-free");
            assert_eq!(magic.divisor, d);
            for n in [0u32, 1, d - 1, d, d + 1, u32::MAX] {
                assert_eq!(magic.divide(n), n / d);
                assert_eq!(magic.modulo(n), n % d);
            }
        }
    }

    #[test]
    fn modulus_pow2_reduce_is_mask() {
        let m = Modulus::pow2(1024);
        assert_eq!(m.size(), 1024);
        assert!(!m.is_magic());
        for h in [0u32, 1, 1023, 1024, 4097, u32::MAX] {
            assert_eq!(m.reduce(h), h % 1024);
        }
    }

    #[test]
    fn modulus_pow2_at_least_rounds_up() {
        assert_eq!(Modulus::pow2_at_least(1000).size(), 1024);
        assert_eq!(Modulus::pow2_at_least(1024).size(), 1024);
        assert_eq!(Modulus::pow2_at_least(1025).size(), 2048);
        assert_eq!(Modulus::pow2_at_least(1).size(), 1);
    }

    #[test]
    fn modulus_magic_reduce_matches_modulo() {
        let m = Modulus::magic_at_least(1_000_000);
        assert!(m.size() >= 1_000_000);
        let d = m.size();
        for h in [0u32, 1, d - 1, d, d + 1, u32::MAX, 0xCAFE_BABE] {
            assert_eq!(m.reduce(h), h % d);
        }
    }

    #[test]
    fn modulus_magic_degenerate_single_block() {
        let m = Modulus::magic_at_least(1);
        assert_eq!(m.size(), 1);
        assert_eq!(m.reduce(u32::MAX), 0);
    }

    #[test]
    fn reduce_is_always_in_range() {
        for desired in [2u32, 3, 17, 1000, 123_456] {
            for modulus in [
                Modulus::magic_at_least(desired),
                Modulus::pow2_at_least(desired),
            ] {
                for h in (0..10_000u32).map(|i| i.wrapping_mul(0x85EB_CA6B)) {
                    assert!(modulus.reduce(h) < modulus.size());
                }
            }
        }
    }
}
