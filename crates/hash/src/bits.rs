//! Hash-bit consumption, mirroring Listings 1 and 2 of the paper.
//!
//! Blocked Bloom filters address a block, then (optionally) a word within the
//! block, then a bit within the word — each step *consumes* a few hash bits
//! (`h = consume log2(x) hash bits`). Because multiplicative hashing mixes the
//! high bits best, bits are consumed from the most-significant end.
//!
//! [`HashBits`] is a small cursor over a 64-bit hash value. When more bits are
//! requested than remain, the cursor transparently rehashes the remaining
//! state with a second multiplicative constant, so arbitrarily many bits can be
//! drawn (needed e.g. for classic Bloom filters with large `k`). The blocked
//! variants never exceed 64 bits for realistic configurations, which is exactly
//! the computational saving the paper describes in §3.1.

use crate::mul::{ALT64, KNUTH64};

/// A cursor that consumes hash bits from the most-significant end of a 64-bit
/// hash state, rehashing when exhausted.
#[derive(Debug, Clone, Copy)]
pub struct HashBits {
    state: u64,
    /// Number of bits still considered "fresh" in `state`.
    remaining: u32,
    /// Total number of bits consumed so far (including bits obtained after
    /// rehashing); exposed for the hash-cost accounting in the model crate.
    consumed: u32,
}

impl HashBits {
    /// Create a cursor over a 64-bit hash value. All 64 bits are fresh.
    #[inline(always)]
    #[must_use]
    pub fn new(hash: u64) -> Self {
        Self {
            state: hash,
            remaining: 64,
            consumed: 0,
        }
    }

    /// Create a cursor from a 32-bit hash value (only 32 fresh bits).
    #[inline(always)]
    #[must_use]
    pub fn from_u32(hash: u32) -> Self {
        Self {
            state: u64::from(hash) << 32,
            remaining: 32,
            consumed: 0,
        }
    }

    /// Consume `n` bits (0 < n <= 32) and return them in the low bits of the
    /// result.
    ///
    /// # Panics
    /// Panics in debug builds if `n` is 0 or larger than 32.
    #[inline(always)]
    pub fn consume(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0 && n <= 32, "can consume between 1 and 32 bits");
        if self.remaining < n {
            // Refresh the state: remix what is left together with the amount
            // consumed so far so successive refreshes stay independent.
            self.state = (self.state ^ u64::from(self.consumed))
                .wrapping_mul(ALT64)
                .rotate_left(32)
                .wrapping_mul(KNUTH64);
            self.remaining = 64;
        }
        let out = (self.state >> (64 - n)) as u32;
        self.state <<= n;
        self.remaining -= n;
        self.consumed += n;
        out
    }

    /// Number of hash bits consumed so far (including regenerated bits).
    #[inline(always)]
    #[must_use]
    pub fn consumed(&self) -> u32 {
        self.consumed
    }
}

/// Number of bits needed to address `x` distinct values, i.e. `ceil(log2(x))`
/// with the convention that addressing a single value needs 0 bits.
#[inline(always)]
#[must_use]
pub fn address_bits(x: u64) -> u32 {
    debug_assert!(x > 0);
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_takes_top_bits_first() {
        let mut bits = HashBits::new(0xABCD_EF01_2345_6789);
        assert_eq!(bits.consume(8), 0xAB);
        assert_eq!(bits.consume(8), 0xCD);
        assert_eq!(bits.consume(16), 0xEF01);
        assert_eq!(bits.consumed(), 32);
    }

    #[test]
    fn consume_full_width() {
        let mut bits = HashBits::new(u64::MAX);
        assert_eq!(bits.consume(32), u32::MAX);
        assert_eq!(bits.consume(32), u32::MAX);
        assert_eq!(bits.consumed(), 64);
    }

    #[test]
    fn rehash_when_exhausted_produces_differing_values() {
        let mut bits = HashBits::new(0x1234_5678_9ABC_DEF0);
        let mut seen = Vec::new();
        for _ in 0..16 {
            seen.push(bits.consume(16));
        }
        // 16 * 16 = 256 bits consumed; at least some values after the refresh
        // must differ from the first four (the refresh is not an identity).
        assert_eq!(bits.consumed(), 256);
        let first_round = &seen[..4];
        let later = &seen[4..];
        assert!(later.iter().any(|v| !first_round.contains(v)));
    }

    #[test]
    fn from_u32_only_exposes_32_fresh_bits() {
        let mut bits = HashBits::from_u32(0xDEAD_BEEF);
        assert_eq!(bits.consume(16), 0xDEAD);
        assert_eq!(bits.consume(16), 0xBEEF);
        // Next consume triggers a refresh and must not panic.
        let _ = bits.consume(16);
        assert_eq!(bits.consumed(), 48);
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = HashBits::new(1);
        let mut b = HashBits::new(2);
        let stream_a: Vec<u32> = (0..8).map(|_| a.consume(32)).collect();
        let stream_b: Vec<u32> = (0..8).map(|_| b.consume(32)).collect();
        assert_ne!(stream_a, stream_b);
    }

    #[test]
    fn address_bits_values() {
        assert_eq!(address_bits(1), 0);
        assert_eq!(address_bits(2), 1);
        assert_eq!(address_bits(3), 2);
        assert_eq!(address_bits(4), 2);
        assert_eq!(address_bits(5), 3);
        assert_eq!(address_bits(64), 6);
        assert_eq!(address_bits(65), 7);
        assert_eq!(address_bits(512), 9);
        assert_eq!(address_bits(1 << 32), 32);
    }

    #[test]
    #[should_panic]
    fn consume_zero_bits_panics_in_debug() {
        let mut bits = HashBits::new(0);
        let _ = bits.consume(0);
    }
}
