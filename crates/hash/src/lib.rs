//! Hashing primitives for performance-optimal filters.
//!
//! This crate provides the hashing machinery shared by every filter variant in
//! the workspace:
//!
//! * [`mul`] — multiplicative hashing (the paper's choice for high-throughput
//!   scenarios, §5) plus stronger finalizers used for verification,
//! * [`bits`] — a [`bits::HashBits`] cursor that *consumes* hash bits exactly the
//!   way Listings 1 and 2 of the paper describe (`h = consume log2(x) hash bits`),
//! * [`magic`] — the magic-modulo technique of §5.2: division by an arbitrary
//!   constant via a multiply–shift sequence, including the search for an
//!   "add-free" divisor so the trailing addition can be elided,
//! * [`fingerprint`] — signature (fingerprint) derivation for Cuckoo filters.
//!
//! All functions are branch-free on the hot path and deliberately avoid any
//! allocation so they can be inlined into the SIMD batch-lookup kernels.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bits;
pub mod fingerprint;
pub mod magic;
pub mod mul;

pub use bits::HashBits;
pub use fingerprint::signature;
pub use magic::{MagicDivisor, Modulus};
pub use mul::{hash32, hash64, mix32, mix64, Hasher32, MulHash32, MulHash64, Murmur3Finalizer};
