//! Multiplicative hashing and bit-mixing finalizers.
//!
//! The paper (§5) uses *multiplicative hashing* for both Bloom and Cuckoo
//! filters because its latency (one multiply) is far below that of
//! cryptographic or even Murmur-style hashes, which matters when the whole
//! lookup budget is a handful of cycles. Multiplicative hashing of a key `x`
//! is `(x * C) >> s` for an odd constant `C`; the high bits of the product are
//! the best-mixed ones, so filters consume hash bits from the top (see
//! [`crate::bits::HashBits`]).
//!
//! For correctness-oriented tests and for the Cuckoo filter's signature hash a
//! stronger Murmur3-style finalizer is provided as well.

/// Knuth's multiplicative constant for 32-bit hashing: `2^32 / phi` rounded to odd.
pub const KNUTH32: u32 = 0x9E37_79B1;
/// 64-bit multiplicative constant (`2^64 / phi`, odd).
pub const KNUTH64: u64 = 0x9E37_79B9_7F4A_7C15;
/// A second, independent odd constant used where two hash functions are needed
/// (e.g. the Cuckoo filter signature hash). Taken from MurmurHash3's c1/c2 mix.
pub const ALT32: u32 = 0x85EB_CA6B;
/// 64-bit variant of [`ALT32`].
pub const ALT64: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Multiplicative 32-bit hash of a 32-bit key.
///
/// The full 32-bit product (mod 2^32) is returned; callers that need `b` well
/// mixed bits should take the *top* `b` bits.
#[inline(always)]
#[must_use]
pub fn hash32(key: u32) -> u32 {
    key.wrapping_mul(KNUTH32)
}

/// Multiplicative 64-bit hash of a 64-bit key.
#[inline(always)]
#[must_use]
pub fn hash64(key: u64) -> u64 {
    key.wrapping_mul(KNUTH64)
}

/// Second (independent) multiplicative 32-bit hash, used wherever two distinct
/// hash functions of the same key are required.
#[inline(always)]
#[must_use]
pub fn hash32_alt(key: u32) -> u32 {
    key.wrapping_mul(ALT32)
}

/// MurmurHash3's 32-bit finalizer (`fmix32`). Full avalanche; used for
/// signatures and in tests as a reference "good" hash.
#[inline(always)]
#[must_use]
pub fn mix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^= h >> 13;
    h = h.wrapping_mul(0xC2B2_AE35);
    h ^= h >> 16;
    h
}

/// MurmurHash3's 64-bit finalizer (`fmix64`).
#[inline(always)]
#[must_use]
pub fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    h
}

/// A 32-bit keyed hasher. The trait exists so filter implementations can be
/// generic over the hash family (multiplicative for speed, Murmur for quality)
/// without any virtual dispatch: all implementors are zero-sized.
pub trait Hasher32: Copy + Default + Send + Sync + 'static {
    /// Hash a 32-bit key to a 32-bit value.
    fn hash(key: u32) -> u32;
    /// Hash a 32-bit key to a 64-bit value (used where more than 32 hash bits
    /// are consumed, e.g. large classic Bloom filters or many-k blocked ones).
    fn hash_wide(key: u32) -> u64;
    /// Human-readable name used in calibration records and figure output.
    fn name() -> &'static str;
}

/// Multiplicative hashing (the paper's default). One multiply per key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MulHash32;

impl Hasher32 for MulHash32 {
    #[inline(always)]
    fn hash(key: u32) -> u32 {
        hash32(key)
    }

    #[inline(always)]
    fn hash_wide(key: u32) -> u64 {
        (u64::from(key) | (u64::from(key) << 32)).wrapping_mul(KNUTH64)
    }

    fn name() -> &'static str {
        "mul"
    }
}

/// 64-bit multiplicative hashing folded to 32 bits. Slightly better mixing in
/// the low bits than [`MulHash32`] at the cost of a 64-bit multiply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MulHash64;

impl Hasher32 for MulHash64 {
    #[inline(always)]
    fn hash(key: u32) -> u32 {
        (hash64(u64::from(key)) >> 32) as u32
    }

    #[inline(always)]
    fn hash_wide(key: u32) -> u64 {
        hash64(u64::from(key))
    }

    fn name() -> &'static str {
        "mul64"
    }
}

/// Murmur3 finalizer hashing. Full avalanche, used as the "quality" reference
/// point in false-positive-rate validation tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3Finalizer;

impl Hasher32 for Murmur3Finalizer {
    #[inline(always)]
    fn hash(key: u32) -> u32 {
        mix32(key)
    }

    #[inline(always)]
    fn hash_wide(key: u32) -> u64 {
        mix64(u64::from(key))
    }

    fn name() -> &'static str {
        "murmur3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash32_is_injective_on_samples() {
        // Multiplication by an odd constant is a bijection on u32.
        let keys = [0u32, 1, 2, 3, 42, 0xFFFF_FFFF, 0x8000_0000, 12345, 67890];
        let mut hashes: Vec<u32> = keys.iter().map(|&k| hash32(k)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), keys.len());
    }

    #[test]
    fn mix32_avalanche_single_bit() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix32(0xDEAD_BEEF);
        for bit in 0..32 {
            let flipped = mix32(0xDEAD_BEEFu32 ^ (1 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!(
                (8..=24).contains(&diff),
                "bit {bit}: only {diff} output bits changed"
            );
        }
    }

    #[test]
    fn mix64_avalanche_single_bit() {
        let base = mix64(0x0123_4567_89AB_CDEF);
        for bit in 0..64 {
            let flipped = mix64(0x0123_4567_89AB_CDEFu64 ^ (1 << bit));
            let diff = (base ^ flipped).count_ones();
            assert!(
                (20..=44).contains(&diff),
                "bit {bit}: only {diff} output bits changed"
            );
        }
    }

    #[test]
    fn top_bits_of_mul_hash_are_well_distributed() {
        // Bucket sequential keys by the top 8 bits of their multiplicative hash
        // and check the histogram is reasonably flat (within 3x of uniform).
        let buckets = 256usize;
        let n = 1usize << 16;
        let mut histogram = vec![0usize; buckets];
        for key in 0..n as u32 {
            let h = hash32(key);
            histogram[(h >> 24) as usize] += 1;
        }
        let expect = n / buckets;
        for (i, &count) in histogram.iter().enumerate() {
            assert!(
                count > expect / 3 && count < expect * 3,
                "bucket {i} has {count}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn hasher_trait_consistency() {
        for key in [0u32, 1, 7, 1 << 20, u32::MAX] {
            assert_eq!(MulHash32::hash(key), hash32(key));
            assert_eq!(Murmur3Finalizer::hash(key), mix32(key));
            assert_eq!(MulHash64::hash(key), (hash64(u64::from(key)) >> 32) as u32);
        }
    }

    #[test]
    fn hasher_names_are_distinct() {
        let names = [
            MulHash32::name(),
            MulHash64::name(),
            Murmur3Finalizer::name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
