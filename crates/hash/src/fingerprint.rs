//! Fingerprint (signature) derivation for Cuckoo filters.
//!
//! A Cuckoo filter stores an `l`-bit *signature* of each key (§4). The
//! signature must never be zero, because the all-zero pattern marks an empty
//! slot in the bucket array. The conventional fix (used by the reference
//! implementation) is to map a zero signature to 1; the resulting tiny bias is
//! accounted for in the false-positive model by using `2^l - 1` distinct
//! signature values.

use crate::mul::mix32;

/// Derive a non-zero `l`-bit signature (1 ≤ `l` ≤ 32) from a key.
///
/// The signature hash must be independent from the bucket-addressing hash, so
/// a full-avalanche finalizer is applied before truncation.
///
/// # Panics
/// Panics in debug builds if `l` is outside `[1, 32]`.
#[inline(always)]
#[must_use]
pub fn signature(key: u32, l: u32) -> u32 {
    debug_assert!((1..=32).contains(&l));
    let mask = if l == 32 { u32::MAX } else { (1u32 << l) - 1 };
    let sig = mix32(key.wrapping_mul(0x85EB_CA77)) & mask;
    // A zero signature would be indistinguishable from an empty slot.
    if sig == 0 {
        1
    } else {
        sig
    }
}

/// Hash of a signature, used by partial-key cuckoo hashing to derive the
/// alternative bucket (Eq. 6/7/11 of the paper). Must be a function of the
/// signature alone (not of the key), so that it can be recomputed from a
/// stored signature during relocation.
#[inline(always)]
#[must_use]
pub fn signature_hash(sig: u32) -> u32 {
    // The reference Cuckoo filter uses multiplication by a Murmur-like odd
    // constant here; a plain multiplicative hash is sufficient and cheap.
    sig.wrapping_mul(0x5BD1_E995)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_is_never_zero() {
        for l in 1..=32u32 {
            for key in (0..5_000u32).map(|i| i.wrapping_mul(0x9E37_79B1)) {
                assert_ne!(signature(key, l), 0, "key {key} l {l}");
            }
        }
    }

    #[test]
    fn signature_fits_in_l_bits() {
        for l in 1..=31u32 {
            let limit = 1u32 << l;
            for key in 0..2_000u32 {
                assert!(signature(key, l) < limit);
            }
        }
    }

    #[test]
    fn signature_is_deterministic() {
        for key in [0u32, 1, 42, u32::MAX] {
            assert_eq!(signature(key, 16), signature(key, 16));
        }
    }

    #[test]
    fn signatures_are_spread_over_the_domain() {
        // With l = 16 and 10k random-ish keys, we expect a large number of
        // distinct signatures (birthday bound ~ 9.3k expected distinct).
        let l = 16;
        let mut sigs: Vec<u32> = (0..10_000u32)
            .map(|i| signature(i.wrapping_mul(0x85EB_CA6B), l))
            .collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert!(
            sigs.len() > 8_000,
            "only {} distinct signatures",
            sigs.len()
        );
    }

    #[test]
    fn signature_hash_differs_from_identity() {
        let mut collisions = 0;
        for sig in 1..10_000u32 {
            if signature_hash(sig) == sig {
                collisions += 1;
            }
        }
        assert!(collisions < 2);
    }
}
