//! False-positive-rate and occupancy models for Cuckoo filters (§4, Eq. 8).

/// Eq. 8 — false-positive probability of a Cuckoo filter with signature length
/// `l` bits, bucket size `b` signatures and load factor `alpha`:
///
/// `f = 1 − (1 − 1/2^l)^(2·b·α)`
///
/// A negative lookup inspects `2·b` slots, of which a fraction `α` is occupied
/// by independent signatures; each occupied slot matches with probability
/// `1/2^l`.
#[must_use]
pub fn f_cuckoo(alpha: f64, l: u32, b: u32) -> f64 {
    assert!((1..=32).contains(&l), "signature length must be in [1, 32]");
    assert!(b >= 1, "bucket size must be at least 1");
    let alpha = alpha.clamp(0.0, 1.0);
    let per_slot_miss = 1.0 - 1.0 / (1u64 << l) as f64;
    1.0 - per_slot_miss.powf(2.0 * f64::from(b) * alpha)
}

/// Load factor of a Cuckoo filter holding `n` keys in `m` bits with `l`-bit
/// signatures: `α = l·n/m` (Eq. 8's definition).
#[must_use]
pub fn load_factor(m_bits: f64, n: f64, l: u32) -> f64 {
    if m_bits <= 0.0 {
        return 1.0;
    }
    f64::from(l) * n / m_bits
}

/// Maximum practically achievable load factor of partial-key cuckoo hashing
/// for a given bucket size (§4: b = 1 ⇒ ~50 %, 2 ⇒ 84 %, 4 ⇒ 95 %, 8 ⇒ 98 %).
///
/// Values for other bucket sizes are interpolated conservatively.
#[must_use]
pub fn max_load_factor(b: u32) -> f64 {
    match b {
        0 => 0.0,
        1 => 0.50,
        2 => 0.84,
        3 => 0.91,
        4 => 0.95,
        5..=7 => 0.96,
        _ => 0.98,
    }
}

/// Effective bits-per-key of a Cuckoo filter: `l / α`. At the maximum load
/// factor this is the best space efficiency the configuration can reach.
#[must_use]
pub fn bits_per_key(l: u32, alpha: f64) -> f64 {
    assert!(alpha > 0.0);
    f64::from(l) / alpha
}

/// Minimum bits-per-key at which a Cuckoo filter with the given `(l, b)` can
/// be built at all (i.e. at its maximum load factor).
#[must_use]
pub fn min_bits_per_key(l: u32, b: u32) -> f64 {
    bits_per_key(l, max_load_factor(b))
}

/// False-positive rate of a Cuckoo filter with a total budget of
/// `bits_per_key` bits per key, assuming the table is sized exactly to that
/// budget (load factor `α = l / bits_per_key`, capped at the maximum for `b`).
///
/// Returns `None` if the configuration cannot hold `n` keys within the budget
/// (required load factor exceeds the maximum for bucket size `b`).
#[must_use]
pub fn f_cuckoo_for_budget(bits_per_key: f64, l: u32, b: u32) -> Option<f64> {
    if bits_per_key <= 0.0 {
        return None;
    }
    let alpha = f64::from(l) / bits_per_key;
    if alpha > max_load_factor(b) {
        return None;
    }
    Some(f_cuckoo(alpha, l, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_points() {
        // §6: "The lowest possible false-positive rate … 0.00005 for Cuckoo
        // (using l = 16 and b = 2)". At 20 bits/key, α = 16/20 = 0.8.
        let f = f_cuckoo(0.8, 16, 2);
        assert!((f - 5e-5).abs() < 1e-5, "f = {f}");
        // "with b set to 1, the false-positive probability would be 0.000024"
        let f1 = f_cuckoo(0.8, 16, 1);
        assert!((f1 - 2.4e-5).abs() < 0.6e-5, "f = {f1}");
        // "if … 19-bit signatures were available, f could be lowered to 0.000015"
        // (at b = 2 the paper's number implies the same α≈0.8 budget-free view)
        let f19 = f_cuckoo(0.8, 19, 2);
        assert!(f19 < 1e-5 * 0.7, "f = {f19}");
    }

    #[test]
    fn f_increases_with_bucket_size_and_load() {
        let base = f_cuckoo(0.8, 12, 2);
        assert!(f_cuckoo(0.8, 12, 4) > base);
        assert!(f_cuckoo(0.8, 12, 8) > f_cuckoo(0.8, 12, 4));
        assert!(f_cuckoo(0.95, 12, 2) > base);
        assert!(f_cuckoo(0.5, 12, 2) < base);
    }

    #[test]
    fn f_decreases_exponentially_with_signature_length() {
        let f8 = f_cuckoo(0.84, 8, 2);
        let f12 = f_cuckoo(0.84, 12, 2);
        let f16 = f_cuckoo(0.84, 16, 2);
        assert!(f8 > f12 && f12 > f16);
        // Each extra 4 signature bits buys roughly a factor 16.
        assert!((f8 / f12 - 16.0).abs() < 1.0);
        assert!((f12 / f16 - 16.0).abs() < 1.0);
    }

    #[test]
    fn load_factor_definition() {
        // 1M keys, 16-bit signatures, 20 bits/key budget ⇒ α = 0.8.
        let n = 1_000_000.0;
        assert!((load_factor(20.0 * n, n, 16) - 0.8).abs() < 1e-12);
        assert_eq!(load_factor(0.0, n, 16), 1.0);
    }

    #[test]
    fn max_load_factors_match_paper() {
        assert_eq!(max_load_factor(1), 0.50);
        assert_eq!(max_load_factor(2), 0.84);
        assert_eq!(max_load_factor(4), 0.95);
        assert_eq!(max_load_factor(8), 0.98);
        assert!(max_load_factor(3) > max_load_factor(2));
        assert!(max_load_factor(16) >= max_load_factor(8));
    }

    #[test]
    fn budgeted_f_rejects_infeasible_configurations() {
        // 16-bit signatures with b = 1 need at least 32 bits/key.
        assert!(f_cuckoo_for_budget(20.0, 16, 1).is_none());
        assert!(f_cuckoo_for_budget(33.0, 16, 1).is_some());
        // 8-bit signatures with b = 4 need ~8.4 bits/key.
        assert!(f_cuckoo_for_budget(8.0, 8, 4).is_none());
        assert!(f_cuckoo_for_budget(10.0, 8, 4).is_some());
        assert!(f_cuckoo_for_budget(0.0, 8, 4).is_none());
    }

    #[test]
    fn budgeted_f_improves_only_gradually_with_size() {
        // Figure 8a: increasing the filter size (lowering α) only gradually
        // improves f — less than 2x from 10 to 20 bits/key at l = 8, b = 4.
        let f10 = f_cuckoo_for_budget(10.0, 8, 4).unwrap();
        let f20 = f_cuckoo_for_budget(20.0, 8, 4).unwrap();
        assert!(f10 / f20 < 2.5, "ratio {}", f10 / f20);
        assert!(f10 > f20);
    }

    #[test]
    fn bucket_size_two_vs_four_tradeoff() {
        // Figure 8b: at a fixed 8-bit signature, shrinking buckets from 4 to 2
        // signatures roughly halves f (but costs load factor).
        let f4 = f_cuckoo(0.95, 8, 4);
        let f2 = f_cuckoo(0.84, 8, 2);
        assert!(f2 < f4);
        assert!(f4 / f2 > 1.8 && f4 / f2 < 2.7, "ratio {}", f4 / f2);
    }

    #[test]
    fn min_bits_per_key_values() {
        assert!((min_bits_per_key(16, 2) - 16.0 / 0.84).abs() < 1e-12);
        assert!((min_bits_per_key(8, 4) - 8.0 / 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn rejects_zero_signature_length() {
        let _ = f_cuckoo(0.5, 0, 2);
    }
}
