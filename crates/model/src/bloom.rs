//! False-positive-rate models for Bloom filter variants (Eq. 2–5) and the
//! classical space-optimal parameter formulas.

use crate::poisson::poisson_expectation;

/// Tail tolerance used when truncating the Poisson sums of Eq. 3–5.
const TAIL: f64 = 1e-12;

/// Eq. 2 — false-positive rate of a *classic* Bloom filter with `m` bits,
/// `n` keys and `k` hash functions:
///
/// `f = (1 − (1 − 1/m)^(k·n))^k`
#[must_use]
pub fn f_std(m: f64, n: f64, k: u32) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if m < 1.0 {
        return 1.0;
    }
    let k_f = f64::from(k);
    // (1 − 1/m)^(k·n) = exp(k·n·ln(1 − 1/m)); ln_1p keeps precision for large m.
    let fill = 1.0 - (k_f * n * (-1.0 / m).ln_1p()).exp();
    fill.powf(k_f).clamp(0.0, 1.0)
}

/// Eq. 3 — false-positive rate of a *blocked* Bloom filter with total size `m`
/// bits, `n` keys, `k` bits per key and block size `b` bits.
///
/// The per-block load is Poisson-distributed with rate `B·n/m`; each block
/// behaves as a classic Bloom filter of size `B`.
#[must_use]
pub fn f_blocked(m: f64, n: f64, k: u32, b: u32) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let b_f = f64::from(b);
    let lambda = b_f * n / m;
    poisson_expectation(lambda, TAIL, |i| f_std(b_f, i as f64, k)).clamp(0.0, 1.0)
}

/// Eq. 4 — false-positive rate of a *sectorized* blocked Bloom filter: block
/// size `b` bits, sector size `s` bits, `k` bits per key spread as `k/(b/s)`
/// bits per sector.
///
/// # Panics
/// Panics if `s` does not divide `b` or `k` is not a multiple of the sector
/// count `b/s`.
#[must_use]
pub fn f_sectorized(m: f64, n: f64, k: u32, b: u32, s: u32) -> f64 {
    assert!(b.is_multiple_of(s), "sector size must divide block size");
    let sectors = b / s;
    assert!(
        k.is_multiple_of(sectors),
        "k ({k}) must be a multiple of the sector count ({sectors})"
    );
    if n <= 0.0 {
        return 0.0;
    }
    let k_per_sector = k / sectors;
    let lambda = f64::from(b) * n / m;
    poisson_expectation(lambda, TAIL, |i| {
        f_std(f64::from(s), i as f64, k_per_sector).powi(sectors as i32)
    })
    .clamp(0.0, 1.0)
}

/// Eq. 5 — false-positive rate of a *cache-sectorized* blocked Bloom filter.
///
/// The block (`b` bits) is divided into `b/s` word-sized sectors which are
/// grouped into `z` groups. Per key, `k/z` bits are set in *one* sector of
/// each group (the sector being chosen by hash bits). The outer Poisson term
/// models the block load `i`; the inner term models how many of those `i`
/// keys chose the particular sector the query key probes within a group
/// (rate `i·z·s/b`, i.e. `i` divided by the `b/(s·z)` sectors of the group).
///
/// # Panics
/// Panics if the parameters are inconsistent (see assertions).
#[must_use]
pub fn f_cache_sectorized(m: f64, n: f64, k: u32, b: u32, s: u32, z: u32) -> f64 {
    assert!(b.is_multiple_of(s), "sector size must divide block size");
    let sectors = b / s;
    assert!(
        z >= 1 && sectors.is_multiple_of(z),
        "groups must evenly split the sectors"
    );
    assert!(
        k.is_multiple_of(z),
        "k ({k}) must be a multiple of the group count ({z})"
    );
    if n <= 0.0 {
        return 0.0;
    }
    let k_per_group = k / z;
    let lambda_block = f64::from(b) * n / m;
    poisson_expectation(lambda_block, TAIL, |i| {
        if i == 0 {
            return 0.0;
        }
        // Within a group the i block-local keys are spread over the group's
        // b/(s·z) sectors; the query's sector receives Poisson(i·s·z/b) keys.
        let lambda_sector = (i as f64) * f64::from(s) * f64::from(z) / f64::from(b);
        let per_group = poisson_expectation(lambda_sector, TAIL, |j| {
            f_std(f64::from(s), j as f64, k_per_group)
        });
        per_group.powi(z as i32)
    })
    .clamp(0.0, 1.0)
}

/// Space-optimal number of hash functions for a classic Bloom filter given a
/// bits-per-key budget: `k = ln 2 · m/n`, rounded to the nearest integer and
/// clamped to at least 1.
#[must_use]
pub fn optimal_k_classic(bits_per_key: f64) -> u32 {
    ((std::f64::consts::LN_2 * bits_per_key).round() as u32).max(1)
}

/// Optimal `k` (in `[1, k_max]`) for a blocked Bloom filter of block size `b`
/// bits at the given bits-per-key budget, found by minimising Eq. 3.
///
/// This is what Figure 4b plots for the 32-, 64- and 512-bit blocked variants.
#[must_use]
pub fn optimal_k_blocked(bits_per_key: f64, b: u32, k_max: u32) -> u32 {
    let n = 1_000_000.0;
    let m = bits_per_key * n;
    let mut best_k = 1;
    let mut best_f = f64::INFINITY;
    for k in 1..=k_max {
        let f = f_blocked(m, n, k, b);
        if f < best_f {
            best_f = f;
            best_k = k;
        }
    }
    best_k
}

/// Space-optimal `k` for a desired false-positive rate: `k = −log2 f`.
#[must_use]
pub fn space_optimal_k(f: f64) -> u32 {
    ((-f.log2()).round() as u32).max(1)
}

/// Space-optimal bits-per-key for a desired false-positive rate:
/// `m/n = 1.44 · (−log2 f)` (the textbook `m = 1.44·k·n`).
#[must_use]
pub fn space_optimal_bits_per_key(f: f64) -> f64 {
    1.44 * (-f.log2())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic textbook reference point: 10 bits/key with k = 7 gives ~0.82 %.
    #[test]
    fn classic_reference_point() {
        let n = 1_000_000.0;
        let f = f_std(10.0 * n, n, 7);
        assert!((f - 0.0082).abs() < 0.0005, "f = {f}");
    }

    #[test]
    fn classic_space_optimal_k_matches_ln2_rule() {
        assert_eq!(optimal_k_classic(10.0), 7);
        assert_eq!(optimal_k_classic(14.4), 10);
        assert_eq!(optimal_k_classic(1.0), 1);
    }

    #[test]
    fn f_std_edge_cases() {
        assert_eq!(f_std(1024.0, 0.0, 4), 0.0);
        assert!(f_std(0.5, 10.0, 4) >= 1.0 - 1e-12);
        // Fully saturated filter: n >> m ⇒ f → 1.
        assert!(f_std(64.0, 100_000.0, 4) > 0.999);
    }

    #[test]
    fn f_std_monotone_in_m_and_n() {
        let n = 100_000.0;
        let mut prev = 1.0;
        for bits_per_key in [4.0, 6.0, 8.0, 12.0, 16.0, 20.0] {
            let f = f_std(bits_per_key * n, n, 6);
            assert!(f < prev, "f not decreasing in m");
            prev = f;
        }
        let m = 1_000_000.0;
        let mut prev = 0.0;
        for n in [1_000.0, 10_000.0, 50_000.0, 100_000.0, 200_000.0] {
            let f = f_std(m, n, 6);
            assert!(f > prev, "f not increasing in n");
            prev = f;
        }
    }

    /// Blocking always costs precision: f_blocked ≥ f_std at equal (m, n, k),
    /// and smaller blocks cost more (Figure 4a ordering).
    #[test]
    fn blocking_orders_false_positive_rates() {
        let n = 1_000_000.0;
        for bits_per_key in [8.0, 10.0, 12.0, 16.0, 20.0] {
            let m = bits_per_key * n;
            let k = optimal_k_classic(bits_per_key).min(8);
            let classic = f_std(m, n, k);
            let b512 = f_blocked(m, n, k, 512);
            let b64 = f_blocked(m, n, k, 64);
            let b32 = f_blocked(m, n, k, 32);
            assert!(
                classic <= b512 * 1.0000001,
                "classic {classic} vs 512-blocked {b512}"
            );
            assert!(
                b512 <= b64 * 1.0000001,
                "512-blocked {b512} vs 64-blocked {b64}"
            );
            assert!(
                b64 <= b32 * 1.0000001,
                "64-blocked {b64} vs 32-blocked {b32}"
            );
        }
    }

    /// Figure 4a reference values: at f = 1 % the paper quotes ≈ 10 bits/key
    /// for classic, ≈ 12 for 64-bit blocks and ≈ 14 for 32-bit blocks.
    #[test]
    fn figure4_reference_bits_per_key() {
        let n = 1_000_000.0;
        let bits_needed = |b: Option<u32>| -> f64 {
            let mut bpk = 4.0;
            loop {
                let m = bpk * n;
                let f = match b {
                    None => (1..=16).map(|k| f_std(m, n, k)).fold(f64::MAX, f64::min),
                    Some(block) => (1..=16)
                        .map(|k| f_blocked(m, n, k, block))
                        .fold(f64::MAX, f64::min),
                };
                if f <= 0.01 {
                    return bpk;
                }
                bpk += 0.25;
                assert!(bpk < 40.0);
            }
        };
        let classic = bits_needed(None);
        let b64 = bits_needed(Some(64));
        let b32 = bits_needed(Some(32));
        assert!(
            (classic - 10.0).abs() <= 1.0,
            "classic needs {classic} bits/key"
        );
        assert!(
            (b64 - 12.0).abs() <= 1.5,
            "64-bit blocked needs {b64} bits/key"
        );
        assert!(
            (b32 - 14.0).abs() <= 2.0,
            "32-bit blocked needs {b32} bits/key"
        );
    }

    /// Sectorization with a single sector equals plain blocking.
    #[test]
    fn sectorized_with_one_sector_equals_blocked() {
        let n = 500_000.0;
        let m = 10.0 * n;
        for b in [64u32, 512] {
            for k in [2u32, 4, 8] {
                let blocked = f_blocked(m, n, k, b);
                let sectorized = f_sectorized(m, n, k, b, b);
                assert!(
                    (blocked - sectorized).abs() < 1e-12,
                    "b={b} k={k}: {blocked} vs {sectorized}"
                );
            }
        }
    }

    /// Spreading k bits over more sectors (at fixed block size) can only
    /// increase f: sectorized ≥ blocked.
    #[test]
    fn sectorization_costs_precision() {
        let n = 500_000.0;
        for bits_per_key in [10.0, 16.0, 20.0] {
            let m = bits_per_key * n;
            let blocked = f_blocked(m, n, 8, 512);
            let sectorized = f_sectorized(m, n, 8, 512, 64);
            assert!(sectorized >= blocked - 1e-12, "{sectorized} < {blocked}");
        }
    }

    /// Figure 7 ordering with k = 8: register-blocked (B = 32) is worst,
    /// cache-sectorized (z = 2) beats sectorized (4×64-bit sectors), and the
    /// fully blocked 512-bit filter is best.
    #[test]
    fn figure7_ordering() {
        let n = 1_000_000.0;
        for bits_per_key in [10.0, 14.0, 18.0] {
            let m = bits_per_key * n;
            let register_blocked = f_blocked(m, n, 8, 32);
            let sectorized_256 = f_sectorized(m, n, 8, 256, 64);
            let cache_z4 = f_cache_sectorized(m, n, 8, 512, 64, 4);
            let cache_z2 = f_cache_sectorized(m, n, 8, 512, 64, 2);
            let blocked_512 = f_blocked(m, n, 8, 512);
            assert!(
                cache_z4 < sectorized_256,
                "z=4 {cache_z4} vs sectorized {sectorized_256}"
            );
            assert!(
                cache_z2 < register_blocked,
                "z=2 {cache_z2} vs register {register_blocked}"
            );
            assert!(
                blocked_512 < cache_z4,
                "blocked {blocked_512} vs z=4 {cache_z4}"
            );
        }
    }

    /// Cache-sectorization with z = number of sectors degenerates to plain
    /// sectorization (each group is exactly one sector). Eq. 5 applies a
    /// second Poisson approximation to the per-sector load that Eq. 4 models
    /// exactly, so the two agree only approximately (a few percent).
    #[test]
    fn cache_sectorized_degenerates_to_sectorized() {
        let n = 250_000.0;
        let m = 12.0 * n;
        let b = 512;
        let s = 64;
        let z = b / s; // 8 groups of one sector each
        let a = f_cache_sectorized(m, n, 8, b, s, z);
        let b_val = f_sectorized(m, n, 8, b, s);
        let rel = (a - b_val).abs() / b_val;
        assert!(rel < 0.10, "{a} vs {b_val} (relative difference {rel})");
    }

    #[test]
    fn space_optimal_formulas() {
        assert_eq!(space_optimal_k(0.01), 7);
        assert_eq!(space_optimal_k(0.001), 10);
        assert!((space_optimal_bits_per_key(0.01) - 9.57).abs() < 0.05);
    }

    #[test]
    fn optimal_k_blocked_is_within_range_and_tracks_budget() {
        let k_small = optimal_k_blocked(6.0, 512, 16);
        let k_large = optimal_k_blocked(20.0, 512, 16);
        assert!((1..=16).contains(&k_small));
        assert!(
            k_large >= k_small,
            "larger budget should not lower optimal k"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the sector count")]
    fn sectorized_rejects_invalid_k() {
        let _ = f_sectorized(1e6, 1e5, 3, 512, 64);
    }

    #[test]
    #[should_panic(expected = "groups must evenly split")]
    fn cache_sectorized_rejects_invalid_groups() {
        let _ = f_cache_sectorized(1e6, 1e5, 8, 512, 64, 3);
    }
}
