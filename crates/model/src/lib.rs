//! Analytical false-positive-rate models for Bloom and Cuckoo filter variants.
//!
//! The paper's performance-optimal filtering framework combines a *measured*
//! lookup cost `t_l` with a *modelled* false-positive rate `f`. This crate
//! implements every formula the paper relies on:
//!
//! | Equation | Function | Filter |
//! |---|---|---|
//! | Eq. 2 | [`bloom::f_std`] | classic Bloom filter |
//! | Eq. 3 | [`bloom::f_blocked`] | blocked Bloom filter |
//! | Eq. 4 | [`bloom::f_sectorized`] | sectorized blocked Bloom filter |
//! | Eq. 5 | [`bloom::f_cache_sectorized`] | cache-sectorized blocked Bloom filter |
//! | Eq. 8 | [`cuckoo::f_cuckoo`] | Cuckoo filter |
//!
//! plus the space-optimal classic parameters (`k = -log2 f`, `m = 1.44·k·n`),
//! optimal-`k` searches for the blocked variants (Figure 4b), and the load
//! factor limits of partial-key cuckoo hashing (§4).
//!
//! All functions operate on `f64` and are deterministic; the empirical
//! cross-validation against real filter implementations lives in the
//! `pof-bloom` and `pof-cuckoo` crates.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bloom;
pub mod cuckoo;
pub mod poisson;

pub use bloom::{
    f_blocked, f_cache_sectorized, f_sectorized, f_std, optimal_k_blocked, optimal_k_classic,
    space_optimal_bits_per_key, space_optimal_k,
};
pub use cuckoo::{bits_per_key as cuckoo_bits_per_key, f_cuckoo, max_load_factor};
pub use poisson::poisson_pmf;
