//! Poisson probabilities used by the blocked-Bloom-filter load model.
//!
//! The number of keys that land in a particular block of a blocked Bloom
//! filter is binomially distributed; the paper (following Putze et al.)
//! approximates it with a Poisson distribution of rate `λ = B·n/m`. The sums
//! in Eq. 3–5 run to infinity; here they are truncated once the remaining tail
//! mass is negligible, which keeps evaluation exact to well below the accuracy
//! of the approximation itself.

/// Probability mass function of the Poisson distribution, `P[X = i]` for rate
/// `lambda`, computed in log space for numerical stability at large rates.
#[must_use]
pub fn poisson_pmf(i: u64, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if i == 0 { 1.0 } else { 0.0 };
    }
    // ln P = i·ln λ − λ − ln(i!)
    let ln_p = (i as f64) * lambda.ln() - lambda - ln_factorial(i);
    ln_p.exp()
}

/// Natural logarithm of `i!` via Stirling's series (exact table for small `i`).
#[must_use]
pub fn ln_factorial(i: u64) -> f64 {
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        std::f64::consts::LN_2, // ln 2!
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_894,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    let i_usize = i as usize;
    if i_usize < TABLE.len() {
        return TABLE[i_usize];
    }
    // Stirling's approximation with correction terms; error < 1e-10 for i > 20.
    let x = i as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// Iterate a function over the Poisson distribution, truncating the infinite
/// sum once at least `1 - tail_tolerance` of the probability mass has been
/// consumed *and* the index has passed the mean.
///
/// Returns `Σ_i pmf(i, λ) · f(i)` for `i = 0, 1, 2, …`.
#[must_use]
pub fn poisson_expectation(lambda: f64, tail_tolerance: f64, mut f: impl FnMut(u64) -> f64) -> f64 {
    if lambda <= 0.0 {
        return f(0);
    }
    let mut total = 0.0;
    let mut mass = 0.0;
    // Hard cap far beyond any realistic block load (λ for a 512-bit block with
    // 20 bits/key is ~26; with 4 bits/key it is ~128).
    let cap = ((lambda + 12.0 * lambda.sqrt()) as u64).clamp(64, 200_000);
    for i in 0..=cap {
        let p = poisson_pmf(i, lambda);
        mass += p;
        total += p * f(i);
        if mass >= 1.0 - tail_tolerance && (i as f64) > lambda {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.1, 1.0, 5.0, 25.0, 100.0, 1000.0] {
            let total: f64 = (0..=(lambda as u64 + 1000))
                .map(|i| poisson_pmf(i, lambda))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda {lambda}: sum {total}");
        }
    }

    #[test]
    fn pmf_zero_rate_is_point_mass_at_zero() {
        assert_eq!(poisson_pmf(0, 0.0), 1.0);
        assert_eq!(poisson_pmf(1, 0.0), 0.0);
        assert_eq!(poisson_pmf(100, 0.0), 0.0);
    }

    #[test]
    fn pmf_matches_direct_formula_for_small_values() {
        // P[X=i] = e^-λ λ^i / i!
        let lambda: f64 = 3.5;
        for i in 0u64..10 {
            let direct = (-lambda).exp() * lambda.powi(i as i32)
                / (1..=i).map(|x| x as f64).product::<f64>().max(1.0);
            assert!((poisson_pmf(i, lambda) - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        for i in 0u64..=30 {
            let direct: f64 = (1..=i).map(|x| (x as f64).ln()).sum();
            assert!(
                (ln_factorial(i) - direct).abs() < 1e-8,
                "i={i}: {} vs {}",
                ln_factorial(i),
                direct
            );
        }
    }

    #[test]
    fn expectation_of_identity_is_lambda() {
        for &lambda in &[0.5, 2.0, 10.0, 60.0] {
            let mean = poisson_expectation(lambda, 1e-12, |i| i as f64);
            assert!((mean - lambda).abs() < 1e-6, "lambda {lambda}: mean {mean}");
        }
    }

    #[test]
    fn expectation_of_constant_is_constant() {
        let value = poisson_expectation(7.3, 1e-12, |_| 42.0);
        assert!((value - 42.0).abs() < 1e-8);
    }

    #[test]
    fn expectation_with_zero_rate_evaluates_at_zero() {
        let value = poisson_expectation(0.0, 1e-12, |i| if i == 0 { 1.0 } else { 0.0 });
        assert_eq!(value, 1.0);
    }
}
