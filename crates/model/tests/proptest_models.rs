//! Property-based tests on the analytical false-positive-rate models.

use pof_model::{f_blocked, f_cache_sectorized, f_cuckoo, f_sectorized, f_std, poisson_pmf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All models produce probabilities in [0, 1].
    #[test]
    fn models_stay_in_unit_interval(
        bits_per_key in 2.0f64..40.0,
        n in 1_000.0f64..10_000_000.0,
        k in 1u32..=16,
    ) {
        let m = bits_per_key * n;
        for f in [
            f_std(m, n, k),
            f_blocked(m, n, k, 32),
            f_blocked(m, n, k, 64),
            f_blocked(m, n, k, 512),
        ] {
            prop_assert!((0.0..=1.0).contains(&f), "f = {}", f);
        }
    }

    /// Classic filter is never worse than any blocked variant at equal (m,n,k).
    /// (For k = 1 the three coincide up to the Poisson approximation, so the
    /// property is only asserted for k >= 2.)
    #[test]
    fn classic_is_a_lower_bound_for_blocking(
        bits_per_key in 4.0f64..24.0,
        k in 2u32..=12,
    ) {
        // Exclude pathologically saturated configurations (k far above the
        // space-optimal value), where the Poisson model's orderings blur.
        prop_assume!(f64::from(k) <= bits_per_key);
        let n = 1_000_000.0;
        let m = bits_per_key * n;
        let classic = f_std(m, n, k);
        for b in [32u32, 64, 128, 256, 512] {
            prop_assert!(f_blocked(m, n, k, b) + 1e-12 >= classic);
        }
    }

    /// Smaller blocks never give a lower false-positive rate (for k >= 2;
    /// at k = 1 all block sizes coincide).
    #[test]
    fn f_monotone_in_block_size(bits_per_key in 4.0f64..24.0, k in 2u32..=10) {
        prop_assume!(f64::from(k) <= bits_per_key);
        let n = 500_000.0;
        let m = bits_per_key * n;
        let mut prev = f_blocked(m, n, k, 32);
        for b in [64u32, 128, 256, 512] {
            let f = f_blocked(m, n, k, b);
            prop_assert!(f <= prev + 1e-12, "b={} f={} prev={}", b, f, prev);
            prev = f;
        }
    }

    /// Blocked f is monotone non-increasing in the filter size m.
    #[test]
    fn f_blocked_monotone_in_m(k in 1u32..=10, b_idx in 0usize..3) {
        let b = [32u32, 64, 512][b_idx];
        let n = 200_000.0;
        let mut prev = 1.0;
        for bits_per_key in [4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 28.0] {
            let f = f_blocked(bits_per_key * n, n, k, b);
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    /// Sectorized variants are sandwiched between the blocked filter of the
    /// same block size (lower bound) and the register-blocked filter of the
    /// sector size (upper bound, asymptotically).
    #[test]
    fn sectorized_bounds(bits_per_key in 6.0f64..24.0) {
        let n = 300_000.0;
        let m = bits_per_key * n;
        let k = 8;
        let blocked = f_blocked(m, n, k, 512);
        let sectorized = f_sectorized(m, n, k, 512, 64);
        let cache = f_cache_sectorized(m, n, k, 512, 64, 2);
        prop_assert!(sectorized + 1e-12 >= blocked);
        prop_assert!(cache + 1e-12 >= blocked);
        // Cache-sectorization spreads bits over the whole cache line and so
        // beats plain sectorization of the same k and word count (Figure 7).
        prop_assert!(cache <= f_sectorized(m, n, k, 128, 64) + 1e-9);
    }

    /// Cuckoo model: probabilities valid and monotone in l.
    #[test]
    fn cuckoo_model_sanity(alpha in 0.05f64..0.98, b_idx in 0usize..3) {
        let b = [1u32, 2, 4][b_idx];
        let mut prev = 1.0;
        for l in [4u32, 8, 12, 16, 24] {
            let f = f_cuckoo(alpha, l, b);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-15);
            prev = f;
        }
    }

    /// Poisson pmf is a valid probability for arbitrary rates.
    #[test]
    fn poisson_pmf_valid(lambda in 0.0f64..5_000.0, i in 0u64..10_000) {
        let p = poisson_pmf(i, lambda);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }
}
