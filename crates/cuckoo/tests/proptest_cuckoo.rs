//! Property-based tests for the Cuckoo filter.

use pof_cuckoo::{CuckooAddressing, CuckooConfig, CuckooFilter, PackedArray};
use pof_filter::{Filter, SelectionVector};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = CuckooConfig> {
    (
        prop_oneof![
            Just(4u32),
            Just(8u32),
            Just(12u32),
            Just(16u32),
            Just(32u32)
        ],
        prop_oneof![Just(1u32), Just(2u32), Just(4u32), Just(8u32)],
        prop_oneof![
            Just(CuckooAddressing::PowerOfTwo),
            Just(CuckooAddressing::Magic)
        ],
    )
        .prop_map(|(l, b, a)| CuckooConfig::new(l, b, a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every successfully inserted key must test positive.
    #[test]
    fn no_false_negatives(
        config in config_strategy(),
        keys in prop::collection::hash_set(any::<u32>(), 1..1_500),
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let mut filter = CuckooFilter::for_keys(config, keys.len());
        let mut inserted = Vec::new();
        for &key in &keys {
            if filter.insert(key) {
                prop_assert!(filter.contains(key), "false negative in {}", config.label());
                inserted.push(key);
            }
        }
        // Re-check after all inserts (relocations must not lose keys).
        for &key in &inserted {
            prop_assert!(filter.contains(key), "late false negative in {}", config.label());
        }
    }

    /// Batched lookups (SIMD when available) agree with the scalar path.
    #[test]
    fn batch_equals_scalar(
        config in config_strategy(),
        keys in prop::collection::vec(any::<u32>(), 1..1_000),
        probes in prop::collection::vec(any::<u32>(), 1..1_000),
    ) {
        let mut filter = CuckooFilter::for_keys(config, keys.len());
        for &key in &keys {
            filter.insert(key);
        }
        let mut batch = SelectionVector::new();
        filter.contains_batch(&probes, &mut batch);
        let mut scalar = SelectionVector::new();
        filter.contains_batch_scalar(&probes, &mut scalar);
        prop_assert_eq!(
            batch.as_slice(),
            scalar.as_slice(),
            "kernel {} disagrees with scalar for {}",
            filter.kernel_name(),
            config.label()
        );
    }

    /// Deleting keys that were inserted restores the pre-insert state
    /// (occupancy returns to the baseline and the deleted keys are gone,
    /// modulo signature collisions with keys that remain).
    #[test]
    fn delete_restores_occupancy(
        config in config_strategy(),
        base in prop::collection::hash_set(any::<u32>(), 1..400),
        extra in prop::collection::hash_set(any::<u32>(), 1..400),
    ) {
        let base: Vec<u32> = base.into_iter().collect();
        let extra: Vec<u32> = extra.iter().filter(|k| !base.contains(k)).copied().collect();
        let mut filter = CuckooFilter::for_keys(config, base.len() + extra.len());
        let base: Vec<u32> = base.into_iter().filter(|&k| filter.insert(k)).collect();
        let occupancy_before = filter.load_factor();
        let extra: Vec<u32> = extra.into_iter().filter(|&k| filter.insert(k)).collect();
        // The slot-count bookkeeping below only holds when no insert had to
        // park a victim in the stash (a stashed insert occupies no slot, so a
        // later delete that matches a colliding slot shifts the count).
        prop_assume!(!filter.has_stashed_victim());
        for &key in &extra {
            prop_assert!(filter.delete(key), "delete failed for inserted key");
        }
        prop_assert!((filter.load_factor() - occupancy_before).abs() < 1e-12);
        for &key in &base {
            prop_assert!(filter.contains(key), "base key lost after deleting extras");
        }
    }

    /// The packed signature array behaves like a plain vector of truncated
    /// values for arbitrary widths and access patterns.
    #[test]
    fn packed_array_matches_reference(
        width in 1u32..=32,
        writes in prop::collection::vec((0u64..500, any::<u32>()), 1..300),
    ) {
        let mut arr = PackedArray::new(500, width);
        let mut reference = vec![0u32; 500];
        let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        for (idx, value) in writes {
            arr.set(idx, value);
            reference[idx as usize] = value & mask;
        }
        for (idx, &expected) in reference.iter().enumerate() {
            prop_assert_eq!(arr.get(idx as u64), expected);
        }
    }

    /// Filters never report keys when empty.
    #[test]
    fn empty_filter_is_empty(config in config_strategy(), probes in prop::collection::vec(any::<u32>(), 1..500)) {
        let filter = CuckooFilter::for_keys(config, 1_000);
        for key in probes {
            prop_assert!(!filter.contains(key));
        }
    }
}

/// The AVX2 bucket kernel must be selected for the SIMD-friendly
/// configurations on AVX2 hosts.
#[test]
fn simd_kernel_selection() {
    if !std::arch::is_x86_feature_detected!("avx2") {
        eprintln!("skipping: host has no AVX2");
        return;
    }
    for (l, b, expect) in [
        (16u32, 2u32, "avx2-bucket32"),
        (8, 4, "avx2-bucket32"),
        (32, 1, "avx2-bucket32"),
        (12, 4, "scalar"),
        (16, 4, "scalar"),
        (4, 8, "scalar"),
    ] {
        let filter =
            CuckooFilter::for_keys(CuckooConfig::new(l, b, CuckooAddressing::Magic), 10_000);
        assert_eq!(filter.kernel_name(), expect, "l={l} b={b}");
    }
}
