//! AVX2 batch-lookup kernel for SIMD-friendly Cuckoo configurations (§5.1).
//!
//! The paper optimizes the signature lengths whose buckets are naturally
//! aligned: here the kernel covers every configuration whose bucket occupies
//! exactly 32 bits (`l·b = 32`, i.e. `l = 8, b = 4`, `l = 16, b = 2` and
//! `l = 32, b = 1`). Eight keys are processed per iteration, one per 32-bit
//! lane; each candidate bucket is fetched with a single GATHER and all its
//! signatures are compared in-register. Other configurations (and hosts
//! without AVX2) use the scalar path.

use crate::config::CuckooConfig;
use crate::filter::CuckooFilter;
use pof_filter::SelectionVector;
use pof_hash::Modulus;

/// The batch-lookup kernel selected for a filter instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    /// Scalar fallback.
    Scalar,
    /// AVX2 kernel for 32-bit buckets (`l·b = 32`).
    Avx2Bucket32,
}

impl Kernel {
    /// Pick the best kernel for a configuration on the current CPU.
    pub(crate) fn select(config: &CuckooConfig) -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && config.bucket_bits() == 32
                && matches!(config.signature_bits, 8 | 16 | 32)
            {
                return Self::Avx2Bucket32;
            }
        }
        let _ = config;
        Self::Scalar
    }

    /// Human-readable kernel name.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Avx2Bucket32 => "avx2-bucket32",
        }
    }
}

/// Run the batched lookup with the given kernel. Returns `false` if the caller
/// should use the scalar path instead.
pub(crate) fn dispatch(
    filter: &CuckooFilter,
    keys: &[u32],
    sel: &mut SelectionVector,
    kernel: Kernel,
) -> bool {
    match kernel {
        Kernel::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2Bucket32 => {
            // SAFETY: the kernel was only selected when AVX2 is available.
            unsafe { avx2::bucket32(filter, keys, sel) };
            true
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use pof_filter::Filter;
    use std::arch::x86_64::*;

    /// Reduce eight 32-bit hash values to bucket indexes (AND for powers of
    /// two, multiply–shift for magic addressing).
    // SAFETY: register-only AVX2 arithmetic, no memory access; reachable
    // only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce(h: __m256i, modulus: &Modulus) -> __m256i {
        match modulus {
            Modulus::PowerOfTwo { log2 } => {
                let mask = _mm256_set1_epi32(((1u64 << log2) - 1) as i32);
                _mm256_and_si256(h, mask)
            }
            Modulus::Magic(m) => {
                let magic = _mm256_set1_epi32(m.magic as i32);
                let hi64_mask = _mm256_set1_epi64x(0xFFFF_FFFF_0000_0000u64 as i64);
                let prod_even = _mm256_mul_epu32(h, magic);
                let prod_odd = _mm256_mul_epu32(_mm256_srli_epi64::<32>(h), magic);
                let hi_even = _mm256_srli_epi64::<32>(prod_even);
                let hi_odd = _mm256_and_si256(prod_odd, hi64_mask);
                let mulhi = _mm256_or_si256(hi_even, hi_odd);
                let q = _mm256_srl_epi32(mulhi, _mm_cvtsi32_si128(m.shift as i32));
                let d = _mm256_set1_epi32(m.divisor as i32);
                _mm256_sub_epi32(h, _mm256_mullo_epi32(q, d))
            }
        }
    }

    /// MurmurHash3 finalizer per lane — the SIMD twin of `pof_hash::mix32`.
    // SAFETY: register-only AVX2 arithmetic, no memory access; reachable
    // only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mix32(mut v: __m256i) -> __m256i {
        v = _mm256_xor_si256(v, _mm256_srli_epi32::<16>(v));
        v = _mm256_mullo_epi32(v, _mm256_set1_epi32(0x85EB_CA6Bu32 as i32));
        v = _mm256_xor_si256(v, _mm256_srli_epi32::<13>(v));
        v = _mm256_mullo_epi32(v, _mm256_set1_epi32(0xC2B2_AE35u32 as i32));
        _mm256_xor_si256(v, _mm256_srli_epi32::<16>(v))
    }

    /// Per-lane test whether a 32-bit bucket word contains the lane's
    /// signature, for signature widths 8, 16 or 32.
    // SAFETY: register-only AVX2 compares on already-loaded bucket words;
    // reachable only through `dispatch`'s runtime feature check.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bucket_matches(bucket: __m256i, sig: __m256i, signature_bits: u32) -> __m256i {
        match signature_bits {
            32 => _mm256_cmpeq_epi32(bucket, sig),
            16 => {
                let mask16 = _mm256_set1_epi32(0xFFFF);
                let lo = _mm256_and_si256(bucket, mask16);
                let hi = _mm256_srli_epi32::<16>(bucket);
                _mm256_or_si256(_mm256_cmpeq_epi32(lo, sig), _mm256_cmpeq_epi32(hi, sig))
            }
            8 => {
                // Broadcast the signature into all four byte positions of the
                // lane, XOR against the bucket and apply the classic
                // "has-zero-byte" trick.
                let splat = _mm256_mullo_epi32(sig, _mm256_set1_epi32(0x0101_0101));
                let diff = _mm256_xor_si256(bucket, splat);
                let ones = _mm256_set1_epi32(0x0101_0101);
                let highs = _mm256_set1_epi32(0x8080_8080u32 as i32);
                let zero_detect = _mm256_and_si256(
                    _mm256_and_si256(
                        _mm256_sub_epi32(diff, ones),
                        _mm256_andnot_si256(diff, highs),
                    ),
                    highs,
                );
                // Any non-zero byte marker means a match.
                let zero = _mm256_setzero_si256();
                let no_match = _mm256_cmpeq_epi32(zero_detect, zero);
                _mm256_xor_si256(no_match, _mm256_set1_epi32(-1))
            }
            _ => unreachable!("kernel only selected for 8/16/32-bit signatures"),
        }
    }

    /// AVX2 batch lookup for 32-bit buckets.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bucket32(filter: &CuckooFilter, keys: &[u32], sel: &mut SelectionVector) {
        let config = *filter.config();
        let l = config.signature_bits;
        let words = filter.words();
        let base = words.as_ptr().cast::<i32>();
        let modulus = filter.modulus();

        let knuth = _mm256_set1_epi32(0x9E37_79B1u32 as i32);
        let sig_seed = _mm256_set1_epi32(0x85EB_CA77u32 as i32);
        let sig_hash_c = _mm256_set1_epi32(0x5BD1_E995u32 as i32);
        let one = _mm256_set1_epi32(1);
        let zero = _mm256_setzero_si256();
        let sig_mask = if l == 32 {
            _mm256_set1_epi32(-1)
        } else {
            _mm256_set1_epi32(((1u32 << l) - 1) as i32)
        };

        let chunks = keys.len() / 8;
        for chunk in 0..chunks {
            let offset = chunk * 8;
            let key_vec = _mm256_loadu_si256(keys.as_ptr().add(offset).cast());

            // Signature: mix32(key · 0x85EB_CA77) masked to l bits, zero → 1.
            let mut sig = _mm256_and_si256(mix32(_mm256_mullo_epi32(key_vec, sig_seed)), sig_mask);
            let is_zero = _mm256_cmpeq_epi32(sig, zero);
            sig = _mm256_or_si256(sig, _mm256_and_si256(is_zero, one));

            // Primary and alternative bucket indexes.
            let b1 = reduce(_mm256_mullo_epi32(key_vec, knuth), modulus);
            let sig_hash = _mm256_mullo_epi32(sig, sig_hash_c);
            let b2 = match modulus {
                Modulus::PowerOfTwo { log2 } => {
                    let mask = _mm256_set1_epi32(((1u64 << log2) - 1) as i32);
                    _mm256_and_si256(_mm256_xor_si256(b1, sig_hash), mask)
                }
                Modulus::Magic(m) => {
                    // alt = (h + C − b1) with one conditional subtraction.
                    let h = reduce(sig_hash, modulus);
                    let c = _mm256_set1_epi32(m.divisor as i32);
                    let t = _mm256_add_epi32(_mm256_sub_epi32(h, b1), c);
                    // t ∈ [1, 2C); subtract C when t ≥ C. Unsigned compare via
                    // max: t ≥ C ⇔ max(t, C) == t, careful with signed lanes —
                    // C < 2^31 and t < 2^32; use the unsigned max trick.
                    let ge = _mm256_cmpeq_epi32(_mm256_max_epu32(t, c), t);
                    _mm256_sub_epi32(t, _mm256_and_si256(ge, c))
                }
            };

            // Each bucket is exactly one 32-bit word: two gathers resolve both
            // candidate buckets of all eight lanes.
            let bucket1 = _mm256_i32gather_epi32::<4>(base, b1);
            let bucket2 = _mm256_i32gather_epi32::<4>(base, b2);
            let hit = _mm256_or_si256(
                bucket_matches(bucket1, sig, l),
                bucket_matches(bucket2, sig, l),
            );
            let lane_mask = _mm256_movemask_ps(_mm256_castsi256_ps(hit));
            for lane in 0..8u32 {
                sel.push_if(offset as u32 + lane, (lane_mask >> lane) & 1 == 1);
            }
        }

        for (i, &key) in keys.iter().enumerate().skip(chunks * 8) {
            sel.push_if(i as u32, filter.contains(key));
        }
    }
}
