//! The Cuckoo filter (§4): partial-key cuckoo hashing over buckets of `b`
//! signatures of `l` bits each.

use crate::config::CuckooConfig;
use crate::packed::PackedArray;
use crate::simd;
use crate::staged;
use pof_filter::probe::{self, ProbePlan};
use pof_filter::{DeleteOutcome, Filter, FilterKind, SelectionVector};
use pof_hash::fingerprint::{signature, signature_hash};
use pof_hash::mul::hash32;
use pof_hash::Modulus;

/// Maximum number of relocations attempted before an insert is declared
/// failed (the reference implementation uses 500).
const MAX_KICKS: u32 = 500;

/// A Cuckoo filter storing `l`-bit signatures in buckets of `b` slots.
///
/// Inserts can fail when the table is too full to relocate signatures
/// (`insert` returns `false`); the filter supports deletion and duplicate
/// keys (a bag, up to `2·b` copies of the same key).
#[derive(Debug, Clone)]
pub struct CuckooFilter {
    config: CuckooConfig,
    modulus: Modulus,
    slots: PackedArray,
    occupied: u64,
    keys_inserted: u64,
    /// Deterministic state for choosing eviction victims.
    victim_rng: u32,
    /// Single-entry victim stash (as in the reference implementation): when a
    /// relocation chain fails, the last evicted signature is parked here so no
    /// previously inserted key ever loses representation.
    stash: Option<(u32, u32)>,
    simd_kernel: simd::Kernel,
    /// Whether the staged (hash → prefetch → probe) kernel may serve large
    /// batches; cleared by [`Self::force_scalar`].
    staged_enabled: bool,
}

impl CuckooFilter {
    /// Create a filter with (at least) `m_bits` bits of signature storage.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `m_bits` is zero.
    #[must_use]
    pub fn new(config: CuckooConfig, m_bits: u64) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid Cuckoo configuration: {e}"));
        assert!(m_bits > 0, "filter size must be positive");
        let modulus = config.addressing_for_bits(m_bits);
        let slots = PackedArray::new(
            u64::from(modulus.size()) * u64::from(config.bucket_size),
            config.signature_bits,
        );
        let simd_kernel = simd::Kernel::select(&config);
        Self {
            config,
            modulus,
            slots,
            occupied: 0,
            keys_inserted: 0,
            victim_rng: 0x9E37_79B9,
            stash: None,
            simd_kernel,
            staged_enabled: true,
        }
    }

    /// Create a filter able to hold `n` keys at the configuration's maximum
    /// load factor.
    #[must_use]
    pub fn for_keys(config: CuckooConfig, n: usize) -> Self {
        let buckets = config.buckets_for_keys(n);
        Self::new(config, buckets * u64::from(config.bucket_bits()))
    }

    /// Create a filter with a total budget of `bits_per_key · n` bits.
    /// Construction may later fail (inserts returning `false`) if the budget
    /// implies a load factor above the configuration's maximum.
    #[must_use]
    pub fn with_bits_per_key(config: CuckooConfig, n: usize, bits_per_key: f64) -> Self {
        let m_bits = ((n as f64) * bits_per_key)
            .ceil()
            .max(f64::from(config.bucket_bits())) as u64;
        Self::new(config, m_bits)
    }

    /// The filter's configuration.
    #[must_use]
    pub fn config(&self) -> &CuckooConfig {
        &self.config
    }

    /// Number of buckets.
    #[must_use]
    pub fn num_buckets(&self) -> u32 {
        self.modulus.size()
    }

    /// Current load factor (occupied slots / total slots).
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.slots.len() as f64
    }

    /// Number of keys successfully inserted (and not deleted).
    #[must_use]
    pub fn keys_inserted(&self) -> u64 {
        self.keys_inserted
    }

    /// True if the single-slot victim stash is occupied. A filter in this
    /// state is effectively full: the next insert that cannot find a free
    /// slot in its two candidate buckets will fail.
    #[must_use]
    pub fn has_stashed_victim(&self) -> bool {
        self.stash.is_some()
    }

    /// Analytical false-positive rate at the current load factor (Eq. 8).
    #[must_use]
    pub fn modeled_fpr(&self) -> f64 {
        self.config.modeled_fpr(self.load_factor())
    }

    /// Which batch-lookup kernel (scalar or SIMD) this instance uses.
    #[must_use]
    pub fn kernel_name(&self) -> &'static str {
        self.simd_kernel.name()
    }

    /// Force the scalar batch-lookup path (for benches and equivalence
    /// tests). Also disables the automatic staged-kernel routing, so
    /// `contains_batch` really runs the scalar loop; the explicit
    /// [`Self::contains_batch_staged`] entry point stays available.
    pub fn force_scalar(&mut self) {
        self.simd_kernel = simd::Kernel::Scalar;
        self.staged_enabled = false;
    }

    /// Borrow the raw slot-storage words for snapshot serialization: the
    /// packed signature array is the filter's entire probe-side state.
    #[must_use]
    pub fn snapshot_words(&self) -> &[u64] {
        self.slots.words()
    }

    /// Export the non-array state a snapshot must carry alongside the words:
    /// `(occupied, keys_inserted, victim_rng, stash)`. Persisting
    /// `victim_rng` keeps post-recovery eviction chains on the exact
    /// sequence the live filter would have taken.
    #[must_use]
    pub fn snapshot_parts(&self) -> (u64, u64, u32, Option<(u32, u32)>) {
        (
            self.occupied,
            self.keys_inserted,
            self.victim_rng,
            self.stash,
        )
    }

    /// Rebuild a filter from persisted raw parts. `num_buckets` must be the
    /// bucket count a previous instance reported via [`Self::num_buckets`]
    /// (the addressing round-up is idempotent over it); fails when the
    /// re-derived layout or the word count disagrees with the snapshot.
    pub fn restore(
        config: CuckooConfig,
        num_buckets: u32,
        words: Vec<u64>,
        parts: (u64, u64, u32, Option<(u32, u32)>),
    ) -> Result<Self, &'static str> {
        let m_bits = u64::from(num_buckets) * u64::from(config.bucket_bits());
        let mut filter = Self::new(config, m_bits);
        if filter.num_buckets() != num_buckets {
            return Err("snapshot bucket count is not a valid addressing layout");
        }
        filter.slots.replace_words(words)?;
        let (occupied, keys_inserted, victim_rng, stash) = parts;
        if occupied > filter.slots.len() {
            return Err("occupied slot count exceeds the array");
        }
        filter.occupied = occupied;
        filter.keys_inserted = keys_inserted;
        filter.victim_rng = victim_rng;
        filter.stash = stash;
        Ok(filter)
    }

    /// Raw slot storage (used by the SIMD kernels).
    #[inline(always)]
    pub(crate) fn words(&self) -> &[u64] {
        self.slots.words()
    }

    /// Bucket-index modulus (used by the SIMD kernels).
    #[inline(always)]
    pub(crate) fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Primary bucket index of a key (Eq. 6: `i1 = hash(x)`).
    #[inline(always)]
    pub(crate) fn primary_bucket(&self, key: u32) -> u32 {
        self.modulus.reduce(hash32(key))
    }

    /// Alternative bucket of a signature currently in `bucket` (Eq. 6/7/11).
    ///
    /// For power-of-two addressing this is the reference implementation's XOR
    /// of the bucket index with the signature hash. For magic addressing the
    /// XOR would leave the bucket range, so the self-inverse mapping
    /// `i2 = (h_sig − i1) mod C` is used instead (a variant of Eq. 11 that
    /// avoids the 32-bit wrap-around issue while keeping the involution
    /// property `alt(alt(i)) = i`).
    #[inline(always)]
    pub(crate) fn alternate_bucket(&self, bucket: u32, sig: u32) -> u32 {
        match &self.modulus {
            Modulus::PowerOfTwo { log2 } => {
                let mask = (1u32 << log2) - 1;
                (bucket ^ signature_hash(sig)) & mask
            }
            Modulus::Magic(m) => {
                let h = m.modulo(signature_hash(sig));
                let c = m.divisor;
                let t = h + c - bucket; // < 2·C, both operands < C ≤ 2^31-ish
                if t >= c {
                    t - c
                } else {
                    t
                }
            }
        }
    }

    /// Signature of a key (never zero; zero marks an empty slot).
    #[inline(always)]
    pub(crate) fn sig(&self, key: u32) -> u32 {
        signature(key, self.config.signature_bits)
    }

    #[inline(always)]
    fn slot_index(&self, bucket: u32, slot: u32) -> u64 {
        u64::from(bucket) * u64::from(self.config.bucket_size) + u64::from(slot)
    }

    /// Search a bucket for a signature (shared with the staged kernel).
    #[inline]
    pub(crate) fn bucket_contains(&self, bucket: u32, sig: u32) -> bool {
        for slot in 0..self.config.bucket_size {
            if self.slots.get(self.slot_index(bucket, slot)) == sig {
                return true;
            }
        }
        false
    }

    /// Try to place a signature into a free slot of a bucket.
    #[inline]
    fn try_place(&mut self, bucket: u32, sig: u32) -> bool {
        for slot in 0..self.config.bucket_size {
            let idx = self.slot_index(bucket, slot);
            if self.slots.get(idx) == 0 {
                self.slots.set(idx, sig);
                self.occupied += 1;
                return true;
            }
        }
        false
    }

    /// Deterministic pseudo-random number for victim selection (xorshift).
    #[inline]
    fn next_victim(&mut self, modulo: u32) -> u32 {
        let mut x = self.victim_rng;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.victim_rng = x;
        x % modulo
    }

    /// Remove one occurrence of a key. Returns `true` if a matching signature
    /// was found and removed.
    ///
    /// As with all Cuckoo filters, deleting a key that was never inserted may
    /// remove the signature of a colliding key; only delete keys that are
    /// known to be present.
    pub fn delete(&mut self, key: u32) -> bool {
        let sig = self.sig(key);
        let b1 = self.primary_bucket(key);
        let b2 = self.alternate_bucket(b1, sig);
        if let Some((stash_bucket, stash_sig)) = self.stash {
            if stash_sig == sig && (stash_bucket == b1 || stash_bucket == b2) {
                self.stash = None;
                self.keys_inserted = self.keys_inserted.saturating_sub(1);
                return true;
            }
        }
        for bucket in [b1, b2] {
            for slot in 0..self.config.bucket_size {
                let idx = self.slot_index(bucket, slot);
                if self.slots.get(idx) == sig {
                    self.slots.set(idx, 0);
                    self.occupied -= 1;
                    self.keys_inserted = self.keys_inserted.saturating_sub(1);
                    return true;
                }
            }
        }
        false
    }

    /// Scalar batched lookup (fallback and reference for the SIMD kernels).
    pub fn contains_batch_scalar(&self, keys: &[u32], sel: &mut SelectionVector) {
        for (i, &key) in keys.iter().enumerate() {
            sel.push_if(i as u32, self.contains(key));
        }
    }

    /// Staged (hash → prefetch → probe) batched lookup through a
    /// caller-owned [`ProbePlan`]: signatures and both candidate buckets for
    /// a chunk of `plan.distance()` keys are hashed and prefetched while the
    /// previous chunk's buckets are scanned, hiding the two per-key miss
    /// latencies that dominate once the table outgrows the cache. Falls back
    /// to the scalar loop while the victim stash is occupied (like the SIMD
    /// kernels, the staged path does not model the stash). Selections are
    /// bit-for-bit identical to [`Self::contains_batch_scalar`].
    /// [`Filter::contains_batch`] routes here automatically for large
    /// batches against large tables.
    pub fn contains_batch_staged(
        &self,
        keys: &[u32],
        sel: &mut SelectionVector,
        plan: &mut ProbePlan,
    ) {
        staged::contains_batch_staged(self, keys, sel, plan);
    }

    /// Prefetch the first cache lines of the signature table. Used by the
    /// sharded store to stream the *next* shard's filter in while the
    /// current shard's slice is being probed.
    #[inline]
    pub fn prefetch_storage(&self) {
        probe::prefetch_lines(self.slots.words());
    }
}

impl Filter for CuckooFilter {
    /// Insert a key. Returns `false` if the relocation search failed, in
    /// which case the filter is left in a consistent state but the key is
    /// *not* represented (a subsequent `contains` may return `false`).
    fn insert(&mut self, key: u32) -> bool {
        let mut sig = self.sig(key);
        let b1 = self.primary_bucket(key);
        let b2 = self.alternate_bucket(b1, sig);
        if self.try_place(b1, sig) || self.try_place(b2, sig) {
            self.keys_inserted += 1;
            return true;
        }
        // Both buckets full: relocate signatures (partial-key cuckoo hashing).
        // If the stash is already occupied no further eviction chain may be
        // started, otherwise a failed chain would drop a stored signature.
        if self.stash.is_some() {
            return false;
        }
        let mut bucket = if self.next_victim(2) == 0 { b1 } else { b2 };
        for _ in 0..MAX_KICKS {
            let victim_slot = self.next_victim(self.config.bucket_size);
            let idx = self.slot_index(bucket, victim_slot);
            let victim_sig = self.slots.get(idx);
            self.slots.set(idx, sig);
            sig = victim_sig;
            bucket = self.alternate_bucket(bucket, sig);
            if self.try_place(bucket, sig) {
                self.keys_inserted += 1;
                return true;
            }
        }
        // The relocation search failed ("an insertion may fail", §4): park the
        // signature evicted last in the stash so every previously inserted key
        // keeps its representation, and report the table as full.
        self.stash = Some((bucket, sig));
        self.keys_inserted += 1;
        true
    }

    fn contains(&self, key: u32) -> bool {
        let sig = self.sig(key);
        let b1 = self.primary_bucket(key);
        if self.bucket_contains(b1, sig) {
            return true;
        }
        let b2 = self.alternate_bucket(b1, sig);
        if self.bucket_contains(b2, sig) {
            return true;
        }
        match self.stash {
            Some((bucket, stash_sig)) => stash_sig == sig && (bucket == b1 || bucket == b2),
            None => false,
        }
    }

    fn contains_batch(&self, keys: &[u32], sel: &mut SelectionVector) {
        // Large batches against tables past the cache-footprint floor go
        // through the staged kernel, which hides both buckets' miss
        // latencies (the stash check inside keeps it exact).
        if self.staged_enabled
            && self.stash.is_none()
            && probe::staged_worthwhile(keys.len(), self.slots.words().len() as u64 * 8)
        {
            probe::with_thread_plan(|plan| staged::contains_batch_staged(self, keys, sel, plan));
            return;
        }
        // The SIMD kernels do not model the (rare) stash entry; fall back to
        // the scalar path whenever it is occupied.
        let kernel = if self.stash.is_some() {
            simd::Kernel::Scalar
        } else {
            self.simd_kernel
        };
        if !simd::dispatch(self, keys, sel, kernel) {
            self.contains_batch_scalar(keys, sel);
        }
    }

    /// Cuckoo filters support deletion: remove one stored occurrence of the
    /// key's signature (see [`CuckooFilter::delete`] for the collision
    /// caveat).
    fn try_delete(&mut self, key: u32) -> DeleteOutcome {
        if self.delete(key) {
            DeleteOutcome::Removed
        } else {
            DeleteOutcome::NotFound
        }
    }

    fn supports_delete(&self) -> bool {
        true
    }

    fn size_bits(&self) -> u64 {
        self.slots.logical_bits()
    }

    fn kind(&self) -> FilterKind {
        FilterKind::Cuckoo
    }

    fn config_label(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CuckooAddressing;
    use pof_filter::{measured_fpr, KeyGen};

    fn all_configs() -> Vec<CuckooConfig> {
        let mut configs = Vec::new();
        for &l in &[4u32, 8, 12, 16, 32] {
            for &b in &[1u32, 2, 4, 8] {
                for addressing in [CuckooAddressing::PowerOfTwo, CuckooAddressing::Magic] {
                    configs.push(CuckooConfig::new(l, b, addressing));
                }
            }
        }
        configs
    }

    #[test]
    fn no_false_negatives_across_configs() {
        let mut gen = KeyGen::new(21);
        let keys = gen.distinct_keys(10_000);
        for config in all_configs() {
            // b = 1 tables cannot exceed ~50 % load; size generously.
            let mut filter = CuckooFilter::for_keys(config, keys.len());
            let mut inserted = Vec::new();
            for &key in &keys {
                if filter.insert(key) {
                    inserted.push(key);
                } else {
                    break;
                }
            }
            // Partial-key cuckoo hashing with single-slot buckets and very
            // short signatures has a heavily constrained relocation graph and
            // cannot reliably reach its nominal occupancy; the semantic
            // guarantee under test (inserted ⇒ found) is unaffected.
            // With 4-bit signatures there are only 15 distinct alternate
            // buckets reachable from any bucket, so the relocation graph is
            // heavily constrained and tables saturate below their nominal
            // occupancy (the paper likewise treats l = 4 as a corner case).
            // Single-slot buckets (b = 1) are the corner case the paper notes
            // "would most likely fail" to construct near 50 % load.
            // The l = 4 threshold is deliberately loose (75 %): with only 15
            // distinct alternate-bucket offsets the achievable occupancy sits
            // near the boundary and shifts a few percent with the key stream.
            let minimum = match (config.signature_bits, config.bucket_size) {
                (_, 1) => keys.len() / 4,
                (0..=4, _) => keys.len() * 75 / 100,
                _ => keys.len() * 95 / 100,
            };
            assert!(
                inserted.len() >= minimum,
                "{}: only {} of {} keys inserted",
                config.label(),
                inserted.len(),
                keys.len()
            );
            for &key in &inserted {
                assert!(filter.contains(key), "false negative in {}", config.label());
            }
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        for config in [
            CuckooConfig::representative(),
            CuckooConfig::new(8, 4, CuckooAddressing::Magic),
        ] {
            let filter = CuckooFilter::for_keys(config, 10_000);
            assert!((0..50_000u32).all(|k| !filter.contains(k)));
        }
    }

    #[test]
    fn achieves_paper_load_factors() {
        // §4: bucket sizes 2 / 4 / 8 reach ~84 % / 95 % / 98 % occupancy.
        let mut gen = KeyGen::new(22);
        for (b, expected) in [(2u32, 0.84), (4, 0.95), (8, 0.98)] {
            let config = CuckooConfig::new(12, b, CuckooAddressing::PowerOfTwo);
            // Fixed number of buckets; insert until failure.
            let filter_bits = 1u64 << 20;
            let mut filter = CuckooFilter::new(config, filter_bits);
            let capacity = filter.num_buckets() as usize * b as usize;
            let keys = gen.distinct_keys(capacity + 1000);
            let mut inserted = 0usize;
            for &key in &keys {
                if !filter.insert(key) {
                    break;
                }
                inserted += 1;
            }
            let achieved = inserted as f64 / capacity as f64;
            assert!(
                achieved >= expected - 0.04,
                "b={b}: achieved load {achieved}, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn measured_fpr_tracks_model() {
        let mut gen = KeyGen::new(23);
        let keys = gen.distinct_keys(60_000);
        for config in [
            CuckooConfig::new(8, 4, CuckooAddressing::PowerOfTwo),
            CuckooConfig::new(12, 4, CuckooAddressing::Magic),
            CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo),
            CuckooConfig::new(16, 2, CuckooAddressing::Magic),
        ] {
            let mut filter = CuckooFilter::for_keys(config, keys.len());
            for &key in &keys {
                assert!(filter.insert(key), "{}", config.label());
            }
            let measured = measured_fpr(&filter, &keys, 500_000, 31).fpr;
            let modeled = filter.modeled_fpr();
            // Small rates need loose relative bounds (few hundred events).
            let tol = if modeled < 1e-3 { 0.5 } else { 0.3 };
            let rel = (measured - modeled).abs() / modeled;
            assert!(
                rel < tol,
                "{}: measured {measured}, modeled {modeled}",
                config.label()
            );
        }
    }

    #[test]
    fn delete_removes_exactly_one_occurrence() {
        let config = CuckooConfig::representative();
        let mut filter = CuckooFilter::for_keys(config, 1000);
        assert!(filter.insert(7));
        assert!(filter.insert(7));
        assert!(filter.contains(7));
        assert!(filter.delete(7));
        assert!(filter.contains(7), "second copy must remain");
        assert!(filter.delete(7));
        assert!(!filter.contains(7));
        assert!(!filter.delete(7));
        assert_eq!(filter.keys_inserted(), 0);
    }

    #[test]
    fn delete_then_reinsert_cycles() {
        let config = CuckooConfig::new(12, 4, CuckooAddressing::Magic);
        let mut gen = KeyGen::new(25);
        let keys = gen.distinct_keys(5_000);
        let mut filter = CuckooFilter::for_keys(config, keys.len());
        for &key in &keys {
            assert!(filter.insert(key));
        }
        let occupancy = filter.load_factor();
        for &key in &keys {
            assert!(filter.delete(key));
        }
        assert_eq!(filter.load_factor(), 0.0);
        for &key in &keys {
            assert!(filter.insert(key));
            assert!(filter.contains(key));
        }
        assert!((filter.load_factor() - occupancy).abs() < 1e-9);
    }

    #[test]
    fn insert_fails_gracefully_when_overfull() {
        // A filter with b = 1 cannot exceed ~50 % load; pushing far beyond
        // that must produce failures rather than panics or corruption.
        let config = CuckooConfig::new(8, 1, CuckooAddressing::PowerOfTwo);
        let mut filter = CuckooFilter::new(config, 8 * 1024);
        let capacity = filter.num_buckets() as usize;
        let mut gen = KeyGen::new(26);
        let keys = gen.distinct_keys(capacity * 2);
        let mut failures = 0;
        for &key in &keys {
            if !filter.insert(key) {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert!(filter.load_factor() <= 1.0);
    }

    #[test]
    fn batch_equals_scalar() {
        let mut gen = KeyGen::new(27);
        let keys = gen.distinct_keys(20_000);
        let probes = gen.keys(40_000);
        for config in all_configs() {
            let mut filter = CuckooFilter::for_keys(config, keys.len());
            for &key in &keys {
                filter.insert(key);
            }
            let mut batch = SelectionVector::new();
            filter.contains_batch(&probes, &mut batch);
            let mut scalar = SelectionVector::new();
            filter.contains_batch_scalar(&probes, &mut scalar);
            assert_eq!(
                batch.as_slice(),
                scalar.as_slice(),
                "kernel {} disagrees with scalar for {}",
                filter.kernel_name(),
                config.label()
            );
        }
    }

    #[test]
    fn alternate_bucket_is_an_involution() {
        for config in all_configs() {
            let filter = CuckooFilter::for_keys(config, 50_000);
            for key in (0..5_000u32).map(|i| i.wrapping_mul(0x85EB_CA6B)) {
                let sig = filter.sig(key);
                let b1 = filter.primary_bucket(key);
                let b2 = filter.alternate_bucket(b1, sig);
                let back = filter.alternate_bucket(b2, sig);
                assert_eq!(back, b1, "involution violated for {}", config.label());
                assert!(b2 < filter.num_buckets());
            }
        }
    }

    #[test]
    fn size_accounting_uses_logical_bits() {
        let config = CuckooConfig::new(12, 4, CuckooAddressing::PowerOfTwo);
        let filter = CuckooFilter::new(config, 1 << 20);
        assert_eq!(
            filter.size_bits(),
            u64::from(filter.num_buckets()) * 4 * 12,
            "12-bit signatures must be accounted at 12 bits, not a padded width"
        );
        assert_eq!(filter.kind(), FilterKind::Cuckoo);
    }

    #[test]
    #[should_panic(expected = "invalid Cuckoo configuration")]
    fn invalid_config_panics() {
        let _ = CuckooFilter::new(CuckooConfig::new(0, 2, CuckooAddressing::PowerOfTwo), 1024);
    }
}
