//! Cuckoo filter configuration (§4 of the paper).

use pof_hash::Modulus;

/// Addressing (modulo) mode for the bucket index, mirroring the Bloom side
/// (Figure 13c: power-of-two vs magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CuckooAddressing {
    /// Bucket count rounded up to a power of two; alternative buckets are
    /// derived with the XOR trick of Eq. 6/7.
    PowerOfTwo,
    /// Arbitrary bucket count via magic modulo; the XOR is replaced by the
    /// self-inverse mapping of Eq. 11.
    Magic,
}

/// A Cuckoo filter configuration: signature length `l`, bucket size `b` and
/// the addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CuckooConfig {
    /// Signature (fingerprint) length in bits; the paper sweeps {4, 8, 12, 16}.
    pub signature_bits: u32,
    /// Number of signatures per bucket; the paper sweeps {1, 2, 4}.
    pub bucket_size: u32,
    /// Addressing mode for the bucket index.
    pub addressing: CuckooAddressing,
}

impl CuckooConfig {
    /// Create a configuration; see [`CuckooConfig::validate`].
    #[must_use]
    pub fn new(signature_bits: u32, bucket_size: u32, addressing: CuckooAddressing) -> Self {
        Self {
            signature_bits,
            bucket_size,
            addressing,
        }
    }

    /// The paper's representative Cuckoo configuration (Figures 14/15):
    /// 16-bit signatures, two per bucket.
    #[must_use]
    pub fn representative() -> Self {
        Self::new(16, 2, CuckooAddressing::PowerOfTwo)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=32).contains(&self.signature_bits) {
            return Err(format!(
                "signature length must be in [1, 32] bits, got {}",
                self.signature_bits
            ));
        }
        if !(1..=8).contains(&self.bucket_size) {
            return Err(format!(
                "bucket size must be in [1, 8], got {}",
                self.bucket_size
            ));
        }
        Ok(())
    }

    /// Bits per bucket (`l·b`).
    #[must_use]
    pub fn bucket_bits(&self) -> u32 {
        self.signature_bits * self.bucket_size
    }

    /// Maximum load factor this configuration can be filled to (§4).
    #[must_use]
    pub fn max_load_factor(&self) -> f64 {
        pof_model::max_load_factor(self.bucket_size)
    }

    /// Analytical false-positive rate at a given load factor (Eq. 8).
    #[must_use]
    pub fn modeled_fpr(&self, load_factor: f64) -> f64 {
        pof_model::f_cuckoo(load_factor, self.signature_bits, self.bucket_size)
    }

    /// Build the bucket-count addressing for a desired total size of `m_bits`.
    #[must_use]
    pub fn addressing_for_bits(&self, m_bits: u64) -> Modulus {
        let desired_buckets = m_bits.div_ceil(u64::from(self.bucket_bits())).max(2);
        let desired_buckets = u32::try_from(desired_buckets).unwrap_or(u32::MAX);
        match self.addressing {
            CuckooAddressing::PowerOfTwo => Modulus::pow2_at_least(desired_buckets),
            CuckooAddressing::Magic => Modulus::magic_at_least(desired_buckets),
        }
    }

    /// Number of buckets needed to hold `n` keys at this configuration's
    /// maximum load factor (with a small safety margin so construction
    /// reliably succeeds).
    #[must_use]
    pub fn buckets_for_keys(&self, n: usize) -> u64 {
        let slots = (n as f64 / (self.max_load_factor() * 0.98)).ceil().max(1.0) as u64;
        slots.div_ceil(u64::from(self.bucket_size)).max(2)
    }

    /// Short human-readable label, e.g. `cuckoo(l=16,b=2,magic)`.
    #[must_use]
    pub fn label(&self) -> String {
        let addr = match self.addressing {
            CuckooAddressing::PowerOfTwo => "pow2",
            CuckooAddressing::Magic => "magic",
        };
        format!(
            "cuckoo(l={},b={},{addr})",
            self.signature_bits, self.bucket_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_config_matches_paper() {
        let c = CuckooConfig::representative();
        assert_eq!(c.signature_bits, 16);
        assert_eq!(c.bucket_size, 2);
        assert_eq!(c.bucket_bits(), 32);
        assert!((c.max_load_factor() - 0.84).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo)
            .validate()
            .is_ok());
        assert!(CuckooConfig::new(4, 1, CuckooAddressing::Magic)
            .validate()
            .is_ok());
        assert!(CuckooConfig::new(0, 2, CuckooAddressing::PowerOfTwo)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(33, 2, CuckooAddressing::PowerOfTwo)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16, 0, CuckooAddressing::PowerOfTwo)
            .validate()
            .is_err());
        assert!(CuckooConfig::new(16, 9, CuckooAddressing::PowerOfTwo)
            .validate()
            .is_err());
    }

    #[test]
    fn bucket_sizing_for_keys() {
        let c = CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo);
        let n = 100_000;
        let buckets = c.buckets_for_keys(n);
        // Enough slots to hold n keys at ≤ 84 % load.
        assert!(buckets * 2 >= (n as f64 / 0.84) as u64);
        // But not wildly oversized.
        assert!(buckets * 2 < (n as f64 / 0.7) as u64);
    }

    #[test]
    fn addressing_sizes() {
        let c = CuckooConfig::new(16, 2, CuckooAddressing::PowerOfTwo);
        let m = c.addressing_for_bits(1 << 20);
        assert!(m.size().is_power_of_two());
        assert!(u64::from(m.size()) * 32 >= 1 << 20);

        let c = CuckooConfig::new(16, 2, CuckooAddressing::Magic);
        let m = c.addressing_for_bits(1_000_000);
        assert!(u64::from(m.size()) * 32 >= 1_000_000);
        assert!(u64::from(m.size()) * 32 < 1_050_000);
    }

    #[test]
    fn labels() {
        assert_eq!(
            CuckooConfig::new(8, 4, CuckooAddressing::Magic).label(),
            "cuckoo(l=8,b=4,magic)"
        );
        assert_eq!(
            CuckooConfig::representative().label(),
            "cuckoo(l=16,b=2,pow2)"
        );
    }

    #[test]
    fn modeled_fpr_delegates_to_model() {
        let c = CuckooConfig::new(12, 4, CuckooAddressing::PowerOfTwo);
        assert_eq!(c.modeled_fpr(0.9), pof_model::f_cuckoo(0.9, 12, 4));
    }
}
