//! Cuckoo filter implementation for performance-optimal filtering (§4–5).
//!
//! A [`CuckooFilter`] is a cuckoo hash table of buckets holding `b` small
//! `l`-bit *signatures* (fingerprints) of the inserted keys. Its two defining
//! properties versus Bloom filters are a lower false-positive rate at the same
//! size and support for deletion — at the price of touching two cache lines
//! per lookup and of inserts that may fail when the table is too full.
//!
//! Implemented here:
//!
//! * partial-key cuckoo hashing with the XOR alternative-bucket derivation for
//!   power-of-two table sizes (Eq. 6/7) and the self-inverse magic-modulo
//!   derivation for arbitrary sizes (Eq. 11, §5.2),
//! * bit-packed signature storage for any `l ∈ [1, 32]` (so 12-bit signatures
//!   really cost 12 bits per slot),
//! * AVX2 batch lookups for the SIMD-friendly configurations whose bucket fits
//!   a 32-bit word (`l·b = 32`), one key per lane (§5.1),
//! * deletion and duplicate (bag) support with a single-slot victim stash.
//!
//! # Example
//!
//! ```
//! use pof_cuckoo::{CuckooConfig, CuckooFilter};
//! use pof_filter::Filter;
//!
//! // The paper's representative configuration: 16-bit signatures, 2 per bucket.
//! let mut filter = CuckooFilter::for_keys(CuckooConfig::representative(), 10_000);
//! for key in 0..10_000u32 {
//!     assert!(filter.insert(key));
//! }
//! assert!(filter.contains(1234));
//! assert!(filter.delete(1234));
//! assert!(!filter.contains(1234));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod filter;
pub mod packed;
mod simd;
mod staged;

pub use config::{CuckooAddressing, CuckooConfig};
pub use filter::CuckooFilter;
pub use packed::PackedArray;
