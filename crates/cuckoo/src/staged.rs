//! Staged (hash → prefetch → probe) mass-lookup kernel for [`CuckooFilter`].
//!
//! A Cuckoo lookup touches *two* candidate buckets (§4), so the scalar batch
//! loop pays up to two serial miss latencies per key once the table outgrows
//! the cache. The staged kernel pipelines the same probe math over chunks of
//! `plan.distance()` keys: the hash stage derives each key's signature and
//! both candidate buckets into the plan's three scratch lanes and prefetches
//! both buckets' cache lines, and the probe stage then scans buckets whose
//! lines were requested a full chunk earlier. Like the SIMD kernels, the
//! staged kernel does not model the (rare) single-slot victim stash — the
//! scalar path answers whenever the stash is occupied.
//!
//! Selections are bit-for-bit identical to `contains_batch_scalar`, which
//! the cross-family agreement suite pins.

use crate::filter::CuckooFilter;
use pof_filter::probe::{prefetch_read, ProbePlan};
use pof_filter::SelectionVector;

/// Run the staged kernel over `keys`, appending qualifying positions to `sel`.
// pof-analyze: no-alloc
pub(crate) fn contains_batch_staged(
    filter: &CuckooFilter,
    keys: &[u32],
    sel: &mut SelectionVector,
    plan: &mut ProbePlan,
) {
    if filter.has_stashed_victim() {
        filter.contains_batch_scalar(keys, sel);
        return;
    }
    if keys.is_empty() {
        return;
    }
    let distance = plan.distance();
    let bucket_bits = u64::from(filter.config().bucket_bits());
    let words = filter.words();
    let [sigs, firsts, seconds] = plan.lanes(2 * distance);
    // Hash + prefetch one chunk: signature and both candidate buckets per
    // key, with a prefetch aimed at each bucket's first storage word.
    let hash_and_prefetch =
        |chunk: &[u32], sigs: &mut [u64], firsts: &mut [u64], seconds: &mut [u64]| {
            for (i, &key) in chunk.iter().enumerate() {
                let sig = filter.sig(key);
                let b1 = filter.primary_bucket(key);
                let b2 = filter.alternate_bucket(b1, sig);
                sigs[i] = u64::from(sig);
                firsts[i] = u64::from(b1);
                seconds[i] = u64::from(b2);
                prefetch_read(&words[(u64::from(b1) * bucket_bits / 64) as usize]);
                prefetch_read(&words[(u64::from(b2) * bucket_bits / 64) as usize]);
            }
        };
    sel.reserve(keys.len());
    let first = distance.min(keys.len());
    hash_and_prefetch(
        &keys[..first],
        &mut sigs[..first],
        &mut firsts[..first],
        &mut seconds[..first],
    );
    let mut begin = 0usize;
    let mut half = 0usize; // chunk c's addresses live at lane[half · distance ..]
    while begin < keys.len() {
        let end = (begin + distance).min(keys.len());
        // Stage the next chunk into the other lane halves before probing
        // this one, so its bucket lines stream in underneath the scans.
        if end < keys.len() {
            let next_end = (end + distance).min(keys.len());
            let other = (1 - half) * distance;
            let len = next_end - end;
            hash_and_prefetch(
                &keys[end..next_end],
                &mut sigs[other..other + len],
                &mut firsts[other..other + len],
                &mut seconds[other..other + len],
            );
        }
        let base = half * distance;
        for i in 0..(end - begin) {
            let sig = sigs[base + i] as u32;
            let hit = filter.bucket_contains(firsts[base + i] as u32, sig)
                || filter.bucket_contains(seconds[base + i] as u32, sig);
            sel.push_if((begin + i) as u32, hit);
        }
        begin = end;
        half = 1 - half;
    }
}
