//! A packed array of fixed-width (≤ 32-bit) unsigned values.
//!
//! Cuckoo filter slots hold `l`-bit signatures for `l` that need not be a
//! power of two (the paper evaluates l ∈ {4, 8, 12, 16}). Storing them in the
//! next wider integer type would silently inflate the bits-per-key accounting
//! that the space-efficiency comparisons rely on, so signatures are stored
//! bit-packed. The backing store is `Vec<u64>`, which the SIMD kernels also
//! view as a little-endian `u32` array for the gather-friendly slot widths
//! (8, 16 and 32 bits).

/// A fixed-width packed array of `len` unsigned values of `width` bits each.
#[derive(Debug, Clone)]
pub struct PackedArray {
    words: Vec<u64>,
    width: u32,
    len: u64,
}

impl PackedArray {
    /// Create a zero-initialised array of `len` values of `width` bits.
    ///
    /// # Panics
    /// Panics if `width` is not in `[1, 32]`.
    #[must_use]
    pub fn new(len: u64, width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in [1, 32]");
        let total_bits = len * u64::from(width);
        let words = usize::try_from(total_bits.div_ceil(64) + 1).expect("array too large");
        Self {
            words: vec![0u64; words],
            width,
            len,
        }
    }

    /// Number of values.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the array holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Width of each value in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Memory footprint of the *logical* array in bits (`len · width`).
    #[must_use]
    pub fn logical_bits(&self) -> u64 {
        self.len * u64::from(self.width)
    }

    /// The backing words (used by the SIMD kernels for gather access).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Replace the backing words wholesale (snapshot restore). Fails unless
    /// `words` has exactly the length this array's `len × width` geometry
    /// allocates, so a persisted array can only be loaded into an
    /// identically-shaped one.
    pub fn replace_words(&mut self, words: Vec<u64>) -> Result<(), &'static str> {
        if words.len() != self.words.len() {
            return Err("backing word count does not match the array geometry");
        }
        self.words = words;
        Ok(())
    }

    /// Mask with the low `width` bits set.
    #[inline(always)]
    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Read the value at `index`.
    ///
    /// # Panics
    /// Panics in debug builds if `index` is out of bounds.
    #[inline(always)]
    #[must_use]
    pub fn get(&self, index: u64) -> u32 {
        debug_assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let bit = index * u64::from(self.width);
        let word = (bit / 64) as usize;
        let offset = bit % 64;
        // Values can straddle a word boundary for widths that do not divide 64
        // (e.g. 12-bit signatures); assemble from two words.
        let lo = self.words[word] >> offset;
        let value = if offset + u64::from(self.width) <= 64 {
            lo
        } else {
            lo | (self.words[word + 1] << (64 - offset))
        };
        (value & self.mask()) as u32
    }

    /// Write the value at `index` (only the low `width` bits are stored).
    ///
    /// # Panics
    /// Panics in debug builds if `index` is out of bounds.
    #[inline(always)]
    pub fn set(&mut self, index: u64, value: u32) {
        debug_assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        let value = u64::from(value) & self.mask();
        let bit = index * u64::from(self.width);
        let word = (bit / 64) as usize;
        let offset = bit % 64;
        self.words[word] &= !(self.mask() << offset);
        self.words[word] |= value << offset;
        if offset + u64::from(self.width) > 64 {
            let spill = 64 - offset;
            self.words[word + 1] &= !(self.mask() >> spill);
            self.words[word + 1] |= value >> spill;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        for width in 1..=32u32 {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let len = 1000u64;
            let mut arr = PackedArray::new(len, width);
            for i in 0..len {
                arr.set(i, (i as u32).wrapping_mul(0x9E37_79B1) & mask);
            }
            for i in 0..len {
                assert_eq!(
                    arr.get(i),
                    (i as u32).wrapping_mul(0x9E37_79B1) & mask,
                    "width {width} index {i}"
                );
            }
        }
    }

    #[test]
    fn neighbours_do_not_interfere() {
        let mut arr = PackedArray::new(100, 12);
        arr.set(10, 0xFFF);
        arr.set(11, 0x000);
        arr.set(9, 0xABC);
        assert_eq!(arr.get(10), 0xFFF);
        assert_eq!(arr.get(11), 0x000);
        assert_eq!(arr.get(9), 0xABC);
        // Overwrite the middle one and re-check the neighbours.
        arr.set(10, 0x123);
        assert_eq!(arr.get(9), 0xABC);
        assert_eq!(arr.get(10), 0x123);
        assert_eq!(arr.get(11), 0x000);
    }

    #[test]
    fn values_are_truncated_to_width() {
        let mut arr = PackedArray::new(10, 8);
        arr.set(3, 0x1FF);
        assert_eq!(arr.get(3), 0xFF);
    }

    #[test]
    fn straddling_word_boundaries() {
        // With 12-bit values, index 5 starts at bit 60 and straddles words.
        let mut arr = PackedArray::new(16, 12);
        for i in 0..16u64 {
            arr.set(i, (0x800 + i) as u32);
        }
        for i in 0..16u64 {
            assert_eq!(arr.get(i), (0x800 + i) as u32);
        }
    }

    #[test]
    fn logical_bits_accounting() {
        let arr = PackedArray::new(1000, 12);
        assert_eq!(arr.logical_bits(), 12_000);
        assert_eq!(arr.width(), 12);
        assert_eq!(arr.len(), 1000);
        assert!(!arr.is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be in")]
    fn rejects_invalid_width() {
        let _ = PackedArray::new(10, 0);
    }
}
