//! Minimal vendored stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate implements the
//! slice of the criterion API the workspace's benches use: benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up time,
//! then runs timed batches until the configured measurement time elapses, and
//! reports the median per-iteration time (plus element throughput when a
//! [`Throughput`] was set). There is no statistical analysis, no HTML report
//! and no baseline comparison — results are printed as one line per benchmark,
//! which is what the workspace's EXPERIMENTS workflow consumes.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Create an id with a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: name,
            parameter: String::new(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (keys, lookups, tuples) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== bench group: {name} ==");
        let (warm_up, measurement) = (self.default_warm_up, self.default_measurement);
        BenchmarkGroup {
            _criterion: self,
            name,
            warm_up,
            measurement,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        run_one("", &id.into(), warm_up, measurement, None, |b| routine(b));
        self
    }
}

/// A group of related benchmarks sharing timing settings and throughput units.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-bounded rather
    /// than sample-count-bounded.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Set the per-iteration throughput used for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (warm_up, measurement, throughput) = (self.warm_up, self.measurement, self.throughput);
        run_one(&self.name, &id, warm_up, measurement, throughput, |b| {
            routine(b, input);
        });
        self
    }

    /// Benchmark a routine without an explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (warm_up, measurement, throughput) = (self.warm_up, self.measurement, self.throughput);
        run_one(
            &self.name,
            &id.into(),
            warm_up,
            measurement,
            throughput,
            |b| {
                routine(b);
            },
        );
        self
    }

    /// Finish the group (report output is already printed per benchmark).
    pub fn finish(self) {}
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up,
        measurement,
        ns_per_iter: None,
    };
    routine(&mut bencher);
    let label = if group.is_empty() {
        id.render()
    } else {
        format!("{group}/{}", id.render())
    };
    match bencher.ns_per_iter {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  thrpt: {:>10.2} Melem/s", n as f64 / ns * 1e3)
                }
                Throughput::Bytes(n) => {
                    format!("  thrpt: {:>10.2} MiB/s", n as f64 / ns * 1e3 / 1.048_576)
                }
            });
            eprintln!(
                "{label:<60} time: {:>12.1} ns/iter{}",
                ns,
                rate.unwrap_or_default()
            );
        }
        None => eprintln!("{label:<60} (no iter() call)"),
    }
}

/// Timing harness handed to each benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Time a routine: warm up, then run timed batches until the measurement
    /// window closes, recording the median batch's per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also discovers how many iterations fit a batch.
        let warm_start = Instant::now();
        let mut iters_in_warmup: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            iters_in_warmup += 1;
        }
        // Aim for ~50 batches over the measurement window.
        let warm_ns = warm_start.elapsed().as_nanos() as f64 / iters_in_warmup.max(1) as f64;
        let batch = ((self.measurement.as_nanos() as f64 / 50.0 / warm_ns.max(1.0)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::new();
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement || samples.is_empty() {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Mirror of criterion's `black_box` (re-export of the std hint).
pub use std::hint::black_box;

/// Define a function running a list of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main()` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim-self-test");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(1));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("noop", 1), &42u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
