//! Minimal vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! small serialization surface the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs with named fields and on unit-variant
//! enums, via a self-describing [`Value`] data model. `serde_json` (also
//! vendored) renders and parses that model as JSON.
//!
//! This is *not* the real serde: no zero-copy, no custom serializers, no
//! attributes. It is deliberately the smallest thing that makes the
//! workspace's calibration/platform persistence work offline.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value (the data model JSON maps onto).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be deserialized into the requested
/// type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error from anything displayable.
    pub fn new(msg: impl std::fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    /// A [`Value`] is already in the data model (mirrors `serde_json`, where
    /// `Value` serializes as itself) — handy for ad-hoc documents built by
    /// hand, like the bench sweep records.
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: i64 = match value {
                    Value::U64(n) => i64::try_from(*n).map_err(|_| DeError::new("integer out of range"))?,
                    Value::I64(n) => *n,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(
                                it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                            )?,
                        )+))
                    }
                    other => Err(DeError::new(format!("expected array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}
