//! Minimal vendored stand-in for `serde_json`: renders and parses the
//! vendored `serde::Value` data model as JSON.
//!
//! Supports everything the workspace persists (calibration sets, platform
//! descriptions): objects, arrays, strings with escapes, integers and
//! floating-point numbers. Floats are printed with Rust's shortest
//! round-trip formatting, so values survive a serialize→parse cycle exactly.

use serde::{Deserialize, Serialize, Value};

/// Error produced by JSON parsing or deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.0)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `1.0f64` displays as `1`; that is still a valid JSON number and
        // deserializes back into any numeric type, so no suffix is needed.
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_compound(out, items.iter().map(|v| (None, v)), indent, '[', ']'),
        Value::Map(entries) => write_compound(
            out,
            entries.iter().map(|(k, v)| (Some(k.as_str()), v)),
            indent,
            '{',
            '}',
        ),
    }
}

fn write_compound<'a>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    indent: Option<usize>,
    open: char,
    close: char,
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, (key, value)) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        if let Some(key) = key {
            write_escaped(out, key);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_value(out, value, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Parse JSON text and deserialize it into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into the generic [`Value`] model.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this crate's
                            // writer; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_compounds() {
        let value = Value::Map(vec![
            ("a".to_string(), Value::U64(7)),
            ("b".to_string(), Value::F64(2.5)),
            ("c".to_string(), Value::Str("hi \"there\"\n".to_string())),
            (
                "d".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &value, None);
        assert_eq!(parse(&compact).unwrap(), value);
        let mut pretty = String::new();
        write_value(&mut pretty, &value, Some(0));
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0, 123456.789, 1e-12, std::f64::consts::PI] {
            let mut out = String::new();
            write_f64(&mut out, f);
            match parse(&out).unwrap() {
                Value::F64(g) => assert_eq!(f, g),
                Value::U64(n) => assert_eq!(f, n as f64),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
