//! Minimal vendored stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements the
//! subset of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter`, range and
//! tuple strategies, [`prelude::Just`], `prop_oneof!`, `any::<T>()`,
//! [`collection::vec`] / [`collection::hash_set`], and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Semantics: pure random sampling with a per-test deterministic seed. There
//! is **no shrinking** — on failure the offending case index and message are
//! reported and the inputs can be reproduced by rerunning the test (the seed
//! is derived from the test name, so reruns are stable). That is a weaker
//! debugging experience than real proptest but identical assertion power.

/// Test-runner types: configuration and case-level error plumbing.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Failure of a single test case (produced by `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Construct a failure from a message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result type of a test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use std::rc::Rc;

    /// The sampling RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SampleRng {
        state: u64,
    }

    impl SampleRng {
        /// Create a generator from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut SampleRng) -> Self::Value;

        /// Transform generated values with a function.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard generated values failing a predicate (rejection sampling
        /// with a bounded retry count).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Rc<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut SampleRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut SampleRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SampleRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SampleRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut SampleRng) -> S::Value {
            for _ in 0..1_000 {
                let candidate = self.inner.sample(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive candidates: {}",
                self.reason
            );
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        arms: Vec<Rc<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Create a union over `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Self { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut SampleRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.below(span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SampleRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SampleRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

/// `any::<T>()` support: full-range strategies per type.
pub mod arbitrary {
    use crate::strategy::{SampleRng, Strategy};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`](crate::any).
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range strategy for a primitive integer type.
    #[derive(Debug, Clone, Copy)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    impl<T> Default for FullRange<T> {
        fn default() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::default()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for FullRange<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut SampleRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;
        fn arbitrary() -> Self::Strategy {
            FullRange::default()
        }
    }
}

/// The canonical strategy for a type: `any::<u32>()` etc.
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec` / `hash_set`).
pub mod collection {
    use crate::strategy::{SampleRng, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy producing a `Vec` of values with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `HashSet` of values with a target size drawn from
    /// a range. If the element domain is too small to reach the target size,
    /// the set is as large as a bounded number of draws achieves (but at least
    /// one element when the size range requires it).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` of roughly `size` elements drawn from `element`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        assert!(size.start < size.end, "empty size range");
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Deterministic 64-bit FNV-1a hash of a test name, used to seed each
/// property's RNG so failures reproduce across runs.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::rc::Rc<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::rc::Rc::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests. Each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pof_config: $crate::test_runner::ProptestConfig = $config;
            let mut __pof_rng = $crate::strategy::SampleRng::new($crate::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            ));
            for __pof_case in 0..__pof_config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __pof_rng);
                )+
                let __pof_outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__pof_err) = __pof_outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __pof_case + 1,
                        __pof_config.cases,
                        __pof_err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 5u32..10, b in 1u64..=3, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((1..=3).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn oneof_map_and_filter_compose(
            v in prop_oneof![Just(1u32), Just(2u32)]
                .prop_map(|x| x * 10)
                .prop_filter("nonzero", |x| *x > 0),
            items in prop::collection::vec(any::<u32>(), 1..20),
            set in prop::collection::hash_set(0u32..1000, 1..50),
        ) {
            prop_assert!(v == 10 || v == 20);
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert!(!set.is_empty() && set.len() < 50);
        }

        #[test]
        fn assume_discards(v in 0u32..10) {
            prop_assume!(v < 5);
            prop_assert!(v < 5);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_from_name("x"), crate::seed_from_name("x"));
        assert_ne!(crate::seed_from_name("x"), crate::seed_from_name("y"));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
