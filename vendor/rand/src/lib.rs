//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! the tiny slice of the `rand` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`]. The
//! generator is a SplitMix64-fed xoshiro256** — statistically far better than
//! the workloads here require (they need "uniform and reproducible", §6 of the
//! paper) and deterministic for a given seed, which is the property every test
//! in the workspace relies on.
//!
//! The streams differ from the real `rand` crate's `StdRng` (ChaCha12); no
//! test in this workspace depends on the exact stream, only on determinism.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution of the real crate).
pub trait Standard {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<U: UniformRange>(&mut self, range: U) -> U::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
