//! Minimal vendored `#[derive(Serialize, Deserialize)]` macros for the
//! vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums with unit variants only (no generics).
//!
//! Anything else produces a compile error naming the limitation. The macros
//! are written against raw `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline); generated impls are assembled as source
//! text and re-parsed, which is entirely adequate for these simple shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants.
    Enum { name: String, variants: Vec<String> },
}

/// Skip one attribute (`#` or `#!` followed by a bracket group) if present.
fn skip_attributes(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '!' {
                        tokens.next();
                    }
                }
                // The bracketed attribute body.
                tokens.next();
            }
            _ => return,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Parse the names of the named fields inside a struct's brace group.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(name) = tree else {
            return Err(format!("unsupported struct field syntax near `{tree}`"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name.to_string());
        // Skip the type: consume until a `,` at zero angle-bracket depth.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    Ok(fields)
}

/// Parse the names of the unit variants inside an enum's brace group.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attributes(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(name) = tree else {
            return Err(format!("unsupported enum variant syntax near `{tree}`"));
        };
        variants.push(name.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => {
                return Err(format!(
                    "only unit enum variants are supported, found payload near `{other}`"
                ))
            }
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type `{name}` is not supported"));
            }
            Some(_) => {}
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let source = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),",
                        f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::Value::Str({:?}.to_string()),", v))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().unwrap()
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(e) => return compile_error(&e),
    };
    let source = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get({:?}).ok_or_else(|| \
                         ::serde::DeError::new(concat!(\"missing field `\", {:?}, \"`\")))?)?,",
                        f, f
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{:?} => ::std::result::Result::Ok(Self::{v}),", v))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    source.parse().unwrap()
}
